"""Gilbert–Elliott burst model + link/node fault state in the network."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults.models import (
    GilbertElliott,
    clear_loss_model,
    install_gilbert_elliott,
    matched_gilbert_params,
)
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Simulator


def make_model(seed=3, **kwargs):
    rng = RngRegistry(seed)
    params = dict(p_gb=0.05, p_bg=0.25, slot_s=0.01)
    params.update(kwargs)
    return GilbertElliott(
        state_rng=rng.stream("state"), packet_rng=rng.stream("pkt"), **params
    )


# ---------------------------------------------------------------- parameters


def test_parameter_validation():
    with pytest.raises(FaultError):
        GilbertElliott(p_gb=0.0, p_bg=0.5)
    with pytest.raises(FaultError):
        GilbertElliott(p_gb=0.5, p_bg=1.5)
    with pytest.raises(FaultError):
        GilbertElliott(p_gb=0.5, p_bg=0.5, loss_bad=1.5)
    with pytest.raises(FaultError):
        GilbertElliott(p_gb=0.5, p_bg=0.5, slot_s=0.0)


def test_matched_params_hit_target_stationary_rate():
    for rate in (0.02, 0.1, 0.188):
        p_gb, p_bg = matched_gilbert_params(rate, p_bg=0.2)
        model = make_model(p_gb=p_gb, p_bg=p_bg)
        assert model.stationary_loss_rate == pytest.approx(rate)
    with pytest.raises(FaultError):
        matched_gilbert_params(0.0)
    with pytest.raises(FaultError):
        matched_gilbert_params(0.99, p_bg=0.2)  # would need p_gb > 1


def test_burst_and_gap_means():
    model = make_model(p_gb=0.05, p_bg=0.25, slot_s=0.01)
    assert model.mean_burst_s == pytest.approx(0.04)
    assert model.mean_gap_s == pytest.approx(0.2)


# --------------------------------------------------------------------- chain


def test_advance_is_lazy_and_idempotent():
    model = make_model()
    model.advance_to(0.005)  # below one slot: no transition drawn
    assert model.transitions == 0
    model.advance_to(1.0)
    state, slot = model.bad, model._slot
    model.advance_to(1.0)  # same time: no further draws
    model.advance_to(0.5)  # going "backwards" is a no-op, never a rewind
    assert (model.bad, model._slot) == (state, slot)


def test_same_seed_same_state_sequence():
    a, b = make_model(seed=11), make_model(seed=11)
    times = [0.1 * i for i in range(200)]
    seq_a = []
    seq_b = []
    for t in times:
        a.advance_to(t)
        b.advance_to(t)
        seq_a.append(a.bad)
        seq_b.append(b.bad)
    assert seq_a == seq_b
    assert any(seq_a), "chain should visit the Bad state over 20 s"


def test_state_at_time_is_independent_of_query_pattern():
    """Querying every 1 ms vs once at the end lands in the same state."""
    fine, coarse = make_model(seed=5), make_model(seed=5)
    t = 0.0
    while t < 10.0:
        fine.advance_to(t)
        t += 0.001
    fine.advance_to(10.0)
    coarse.advance_to(10.0)
    assert fine.bad == coarse.bad
    assert fine._slot == coarse._slot


def test_stationary_fraction_approximates_analytic():
    model = make_model(seed=9, p_gb=0.05, p_bg=0.25)
    bad_slots = 0
    n = 20_000
    for i in range(1, n + 1):
        model.advance_to(i * model.slot_s)
        bad_slots += model.bad
    observed = bad_slots / n
    assert observed == pytest.approx(model.stationary_loss_rate, abs=0.03)


# ----------------------------------------------------- network wiring + fix


def burst_net(seed=4):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_node()
    net.add_node()
    net.add_link(0, 1, 10e6, 0.01)
    (model,) = install_gilbert_elliott(
        net, 0, 1, p_gb=0.2, p_bg=0.3, slot_s=0.01, both=False
    )
    return sim, net, model


def test_install_wires_per_direction_models():
    sim = Simulator(seed=4)
    net = Network(sim)
    net.add_node()
    net.add_node()
    net.add_link(0, 1, 10e6, 0.01)
    fwd, rev = install_gilbert_elliott(net, 0, 1, p_gb=0.1, p_bg=0.2)
    assert net.link(0, 1).loss_model is fwd
    assert net.link(1, 0).loss_model is rev
    assert fwd is not rev
    clear_loss_model(net, 0, 1)
    assert net.link(0, 1).loss_model is None
    assert net.link(1, 0).loss_model is None


def test_exempt_packets_advance_model_state():
    """The loss-exemption early-return must not bypass the model.

    Regression for the determinism bug: a skipped advance would let a
    packet-driven model's state depend on whether session traffic crossed.
    """
    sim, net, model = burst_net()
    exempt = Packet("SESSION", 0, -1, 100, loss_exempt=True)
    sim._now = 1.0
    dropped = net._drops(net.link(0, 1), exempt)
    assert not dropped, "exempt packets never suffer model loss on an up link"
    assert model._slot == 100, "the crossing must advance the chain to now"


def test_drop_pattern_unchanged_by_interleaved_exempt_traffic():
    """Data-packet drop decisions are a function of the clock alone."""

    def data_decisions(with_session: bool):
        sim, net, model = burst_net(seed=21)
        link = net.link(0, 1)
        data = Packet("DATA", 0, -1, 1000)
        session = Packet("SESSION", 0, -1, 100, loss_exempt=True)
        decisions = []
        for i in range(400):
            sim._now = 0.005 * i
            if with_session and i % 3 == 0:
                assert not net._drops(link, session)
            decisions.append(net._drops(link, data))
        return decisions

    assert data_decisions(False) == data_decisions(True)


def test_down_link_drops_everything_including_exempt():
    sim, net, _ = burst_net()
    link = net.link(0, 1)
    exempt = Packet("NACK", 0, -1, 32, loss_exempt=True)
    link.fail()
    assert net._drops(link, exempt)
    link.restore()
    assert not net._drops(link, exempt)


def test_set_link_up_and_node_up_helpers():
    sim = Simulator(seed=1)
    net = Network(sim)
    for _ in range(3):
        net.add_node()
    net.add_link(0, 1, 10e6, 0.01)
    net.add_link(1, 2, 10e6, 0.01)
    net.set_link_up(0, 1, False)
    assert not net.link(0, 1).up and not net.link(1, 0).up
    net.set_link_up(0, 1, True, both=False)
    assert net.link(0, 1).up and not net.link(1, 0).up
    net.set_node_up(1, False)
    assert not net.nodes[1].up
    with pytest.raises(Exception):
        net.set_node_up(99, False)


def test_down_node_neither_delivers_nor_forwards():
    sim = Simulator(seed=2)
    net = Network(sim)
    for _ in range(3):
        net.add_node()
    net.add_link(0, 1, 10e6, 0.01)
    net.add_link(1, 2, 10e6, 0.01)
    group = net.create_group("g")
    got = {1: 0, 2: 0}
    net.subscribe(group.group_id, 1, lambda p: got.__setitem__(1, got[1] + 1))
    net.subscribe(group.group_id, 2, lambda p: got.__setitem__(2, got[2] + 1))

    net.set_node_up(1, False)
    net.multicast(0, Packet("DATA", 0, group.group_id, 100))
    sim.run(until=1.0)
    assert got == {1: 0, 2: 0}, "crashed relay must blackhole its subtree"

    # After the restart, routing only readmits the node once the
    # reconvergence delay has elapsed — run past it before sending again.
    net.set_node_up(1, True)
    sim.run(until=2.0)
    net.multicast(0, Packet("DATA", 0, group.group_id, 100))
    sim.run(until=3.0)
    assert got == {1: 1, 2: 1}

    # A crashed source transmits nothing at all.
    net.set_node_up(0, False)
    net.multicast(0, Packet("DATA", 0, group.group_id, 100))
    sim.run(until=4.0)
    assert got == {1: 1, 2: 1}
