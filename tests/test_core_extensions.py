"""Tests for the §7 extensions: late joins, adaptive timers, static ZCRs."""

from __future__ import annotations

import pytest

from repro.core.config import SharqfecConfig
from repro.core.protocol import SharqfecProtocol
from repro.errors import ConfigError
from repro.net.network import Network
from repro.sim.scheduler import Simulator
from repro.topology.builders import build_star
from repro.topology.figure10 import build_figure10


def build_simple(seed=1, loss=0.1):
    sim = Simulator(seed=seed)
    net = build_star(sim, n_leaves=3, loss_rate=loss)
    return sim, net


# ------------------------------------------------------------- late joins


def late_join_run(recovery: bool, seed=2):
    sim, net = build_simple(seed=seed)
    cfg = SharqfecConfig(
        n_packets=64, scoping=False, late_join_recovery=recovery
    )
    proto = SharqfecProtocol(net, cfg, 0, [1, 2, 3])
    proto.start(session_start=1.0, data_start=6.0)
    # Receiver 3 joins mid-stream: groups 0 and 1 already went by.
    late = proto.receivers[3]
    proto.defer_receiver(3)
    sim.at(6.35, proto.join_receiver, 3)
    sim.run(until=40.0)
    return proto, late


def test_late_join_without_recovery_baselines_at_first_group():
    proto, late = late_join_run(recovery=False)
    # Early groups never tracked; everything from the join point onward is.
    tracked = sorted(late.groups)
    assert tracked[0] >= 1
    assert all(late.groups[g].complete for g in tracked)
    # And the late receiver sent no requests for the missed prefix.
    assert 0 not in late.groups


def test_late_join_with_recovery_backfills_missed_groups():
    proto, late = late_join_run(recovery=True)
    assert late.all_complete(proto.config.n_groups), sorted(
        g for g in range(proto.config.n_groups)
        if g not in late.groups or not late.groups[g].complete
    )
    # The prefix was recovered via requests, not via the original stream.
    assert late.nacks_sent > 0


# --------------------------------------------------------- adaptive timers


def test_adaptive_timers_still_deliver():
    sim = Simulator(seed=3)
    topo = build_figure10(sim)
    cfg = SharqfecConfig(n_packets=48, adaptive_timers=True)
    proto = SharqfecProtocol(
        topo.network, cfg, topo.source, topo.receivers, topo.hierarchy
    )
    proto.start(1.0, 6.0)
    sim.run(until=45.0)
    assert proto.all_complete()


def test_adaptive_timers_move_constants():
    sim = Simulator(seed=4)
    topo = build_figure10(sim)
    cfg = SharqfecConfig(n_packets=96, adaptive_timers=True)
    proto = SharqfecProtocol(
        topo.network, cfg, topo.source, topo.receivers, topo.hierarchy
    )
    proto.start(1.0, 6.0)
    sim.run(until=45.0)
    assert proto.all_complete()
    moved = sum(
        1
        for r in proto.receivers.values()
        if (r._adaptive_request.start, r._adaptive_request.width)
        != (cfg.c1, cfg.c2)
    )
    assert moved > 0, "at least some receivers should have adapted"


def test_fixed_timers_never_move():
    sim = Simulator(seed=5)
    topo = build_figure10(sim)
    cfg = SharqfecConfig(n_packets=48)  # adaptive_timers=False
    proto = SharqfecProtocol(
        topo.network, cfg, topo.source, topo.receivers, topo.hierarchy
    )
    proto.start(1.0, 6.0)
    sim.run(until=40.0)
    for r in proto.receivers.values():
        assert (r._adaptive_request.start, r._adaptive_request.width) == (
            cfg.c1,
            cfg.c2,
        )


# -------------------------------------------------------------- static ZCRs


def test_static_zcrs_skip_bootstrap_election():
    sim = Simulator(seed=6)
    topo = build_figure10(sim, lossless=True)
    static = {zid: topo.heads[i] for i, zid in enumerate(topo.tree_zone_ids)}
    cfg = SharqfecConfig(n_packets=16)
    proto = SharqfecProtocol(
        topo.network, cfg, topo.source, topo.receivers, topo.hierarchy,
        static_zcrs=static,
    )
    sim.at(1.0, proto._start_sessions)
    sim.run(until=3.0)  # far before dynamic elections would settle
    for head in topo.heads:
        agent = proto.receivers[head]
        tree_zone = [z for z in agent.session.chain if z.level == 1][0]
        assert agent.session.zcr_ids.get(tree_zone.zone_id) == head


def test_static_zcr_outside_zone_rejected():
    sim = Simulator(seed=7)
    topo = build_figure10(sim)
    bad = {topo.tree_zone_ids[0]: topo.heads[1]}  # head of another tree
    with pytest.raises(ConfigError):
        SharqfecProtocol(
            topo.network, SharqfecConfig(), topo.source, topo.receivers,
            topo.hierarchy, static_zcrs=bad,
        )


def test_static_zcr_failure_still_recovers():
    """§5.2: the challenge phase backs up a dead dedicated receiver."""
    sim = Simulator(seed=8)
    net = Network(sim)
    for _ in range(4):
        net.add_node()
    for a in range(3):
        net.add_link(a, a + 1, 10e6, 0.020)
    from repro.scoping.zone import ZoneHierarchy

    h = ZoneHierarchy()
    root = h.add_root(range(4), name="Z0")
    zone = h.add_zone(root.zone_id, {1, 2, 3}, name="edge")
    proto = SharqfecProtocol(
        net, SharqfecConfig(n_packets=16), 0, [1, 2, 3], h,
        static_zcrs={zone.zone_id: 1},
    )
    sim.at(1.0, proto._start_sessions)
    sim.run(until=10.0)
    proto.receivers[1].stop()
    sim.run(until=60.0)
    views = {proto.receivers[n].session.zcr_ids.get(zone.zone_id) for n in (2, 3)}
    assert views == {2}
