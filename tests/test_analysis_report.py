"""Tests for the sparkline renderer."""

from __future__ import annotations

from repro.analysis.report import sparkline


def test_sparkline_shape():
    line = sparkline([0, 5, 10, 5, 0])
    assert len(line) == 5
    assert line[0] == "▁" and line[2] == "█"
    assert line == line[::-1]  # symmetric input, symmetric output


def test_sparkline_constant_series_is_flat():
    assert sparkline([7.0] * 12) == "▁" * 12


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_sparkline_downsamples_to_width():
    line = sparkline(list(range(1000)), width=50)
    assert len(line) == 50
    # Monotone input stays (weakly) monotone after max-bucketing.
    levels = "▁▂▃▄▅▆▇█"
    indices = [levels.index(c) for c in line]
    assert indices == sorted(indices)


def test_sparkline_downsampling_preserves_peaks():
    series = [0.0] * 100
    series[42] = 99.0  # a single spike must survive max-bucketing
    line = sparkline(series, width=20)
    assert "█" in line


def test_sparkline_short_series_not_padded():
    assert len(sparkline([1, 2], width=72)) == 2
