"""Regression tests for the hot-path optimization layer.

Every optimization in this PR (tuple heap, tombstone compaction, event
recycling, handle-free ``push_call`` entries, compiled forwarding, numpy
codec default) is required to be *behaviour-preserving*: seeded runs must
replay byte-identically whichever path executes.  These tests pin the
equivalences and the queue bookkeeping that the optimizations rely on.
"""

from __future__ import annotations

import pytest

from repro.net.monitor import TrafficMonitor
from repro.net.packet import Packet
from repro.sim.events import COMPACT_MIN_DEAD, EventQueue
from repro.sim.scheduler import Simulator
from repro.sim.timers import Timer
from repro.sim.trace import Tracer
from repro.topology.figure10 import build_figure10


# --------------------------------------------------------- queue bookkeeping


def test_clear_resets_sequence_counter():
    q = EventQueue()
    for _ in range(5):
        q.push(1.0, lambda: None)
    q.clear()
    event = q.push(1.0, lambda: None)
    assert event.seq == 0


def test_reset_replays_same_time_events_in_original_order():
    """A reset simulator must re-run with the seed queue's tie-breaks.

    All events fire at the same instant, so ordering is decided purely by
    sequence numbers; if ``clear()`` carried the counter over, the replay
    would still fire in schedule order but any code comparing recorded
    sequences (or mixing in new pushes) would diverge from a fresh run.
    """

    def run_once(sim: Simulator) -> list:
        order = []
        for tag in range(8):
            sim.schedule(0.5, order.append, tag)
        sim.run()
        return order

    sim = Simulator(seed=3)
    first = run_once(sim)
    seqs_before = sim.queue._next_seq
    sim.reset(seed=3)
    assert sim.queue._next_seq == 0
    second = run_once(sim)
    assert first == second
    assert sim.queue._next_seq == seqs_before


def test_cancel_after_fire_is_noop_and_len_stays_consistent():
    q = EventQueue()
    event = q.push(1.0, lambda: None)
    other = q.push(2.0, lambda: None)
    assert len(q) == 2
    fired = q.pop()
    assert fired is event and fired.fired
    assert len(q) == 1
    # Cancelling a fired event must not decrement the live count again.
    q.cancel(event)
    assert len(q) == 1
    assert not event.cancelled
    q.cancel(other)
    assert len(q) == 0
    q.cancel(other)  # double cancel: still a no-op
    assert len(q) == 0
    assert q.pop() is None


def test_tombstone_compaction_bounds_heap_size():
    q = EventQueue()
    # One long-lived survivor plus a churn of cancellations far beyond the
    # compaction floor: the raw heap must not grow with the cancel count.
    q.push(1000.0, lambda: None)
    for i in range(20 * COMPACT_MIN_DEAD):
        q.cancel(q.push(1.0 + i, lambda: None))
    assert len(q) == 1
    assert q.heap_size <= 2 * COMPACT_MIN_DEAD + 2
    assert q.tombstones <= q.heap_size


def test_compaction_preserves_pop_order():
    q = EventQueue()
    fired = []
    keepers = []
    for i in range(300):
        event = q.push(float(i), fired.append, (i,))
        if i % 3 == 0:
            keepers.append(i)
        else:
            q.cancel(event)
    while q:
        q.pop().fire()
    assert fired == keepers


def test_same_time_ordering_across_entry_kinds():
    """push, push_call, reschedule and rearm share one tie-break sequence."""
    q = EventQueue()
    fired = []
    q.push(1.0, fired.append, ("push-0",))
    q.push_call(1.0, fired.append, ("call-1",))
    moved = q.push(0.5, fired.append, ("resched-2",))
    q.reschedule(moved, 1.0)  # consumes seq 3: fires after call-1
    q.push_call(1.0, fired.append, ("call-3",))
    while q:
        q.pop().fire()
    assert fired == ["push-0", "call-1", "resched-2", "call-3"]


def test_reschedule_rejects_fired_and_cancelled_events():
    q = EventQueue()
    event = q.push(1.0, lambda: None)
    q.cancel(event)
    with pytest.raises(ValueError):
        q.reschedule(event, 2.0)
    live = q.push(1.0, lambda: None)
    q.pop().fire()
    with pytest.raises(ValueError):
        q.reschedule(live, 2.0)


def test_rearm_fired_recycles_event_object():
    q = EventQueue()
    fired = []
    event = q.push(1.0, fired.append, ("x",))
    q.pop().fire()
    assert q.rearm_fired(event, 2.0) is event
    assert len(q) == 1 and not event.fired
    popped = q.pop()
    assert popped is event and popped.time == 2.0
    popped.fire()
    assert fired == ["x", "x"]


def test_rearm_fired_rejects_pending_and_cancelled_events():
    q = EventQueue()
    pending = q.push(1.0, lambda: None)
    with pytest.raises(ValueError):
        q.rearm_fired(pending, 2.0)
    q.cancel(pending)
    with pytest.raises(ValueError):
        q.rearm_fired(pending, 2.0)


def test_push_call_fires_through_run_loop():
    sim = Simulator()
    fired = []
    sim.call_at(0.25, fired.append, "a")
    sim.schedule(0.25, fired.append, "b")
    sim.call_at(0.25, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 0.25


def test_push_call_respects_run_horizon():
    sim = Simulator()
    fired = []
    sim.call_at(1.0, fired.append, "late")
    sim.run(until=0.5)
    assert fired == []
    assert sim.now == 0.5
    sim.run()
    assert fired == ["late"]


def test_timer_restart_recycles_after_fire():
    sim = Simulator()
    count = [0]
    timer = Timer(sim, lambda: count.__setitem__(0, count[0] + 1), name="t")
    timer.start(0.1)
    sim.run()
    assert count[0] == 1 and not timer.running
    timer.restart(0.1)  # recycles the fired event in place
    assert timer.running
    sim.run()
    assert count[0] == 2


# ----------------------------------------------------------------- tracing


def test_tracer_version_bumps_on_table_and_enable_changes():
    tracer = Tracer()
    v0 = tracer.version
    listener = lambda record: None
    tracer.subscribe("pkt.recv", listener)
    assert tracer.version > v0
    v1 = tracer.version
    tracer.enabled = False
    assert tracer.version > v1
    v2 = tracer.version
    tracer.enabled = False  # unchanged value: no bump
    assert tracer.version == v2
    tracer.unsubscribe("pkt.recv", listener)
    assert tracer.version > v2


def test_tracer_wants_tracks_subscriptions_and_enabled():
    tracer = Tracer()
    assert not tracer.wants("pkt.recv")
    listener = lambda record: None
    tracer.subscribe("pkt.recv", listener)
    assert tracer.wants("pkt.recv")
    assert not tracer.wants("pkt.send")
    tracer.enabled = False
    assert not tracer.wants("pkt.recv")
    tracer.enabled = True
    tracer.subscribe(None, listener)  # wildcard reaches every category
    assert tracer.wants("pkt.send")


# --------------------------------------------- forwarding path equivalence


def _flood(compiled: bool, n_packets: int = 60, seed: int = 11):
    """Flood the Figure 10 topology and return observable outcomes."""
    sim = Simulator(seed=seed)
    fig = build_figure10(sim)
    net = fig.network
    net.compiled_forwarding = compiled
    group = net.create_group("flood")
    delivered = []
    for node in fig.receivers:
        net.subscribe(group.group_id, node, lambda pkt, n=node: delivered.append((n, pkt.uid)))
    monitor = TrafficMonitor()
    net.add_observer(monitor)
    recv_trace = []
    sim.tracer.subscribe("pkt.recv", lambda rec: recv_trace.append((rec.time, rec.node)))

    def send() -> None:
        net.multicast(fig.source, Packet("DATA", fig.source, group.group_id, 1024))

    for i in range(n_packets):
        sim.at(i * 0.003, send)
    sim.run()
    series = {
        node: monitor.series(["DATA"], node, t_end=sim.now) for node in fig.receivers
    }
    # Packet uids come from a process-global counter; normalize to the
    # run's first uid so two runs compare by position in the stream.
    base = min((uid for _, uid in delivered), default=0)
    deliveries = sorted((node, uid - base) for node, uid in delivered)
    return deliveries, recv_trace, monitor.total(["DATA"]), monitor.drops, series


def test_compiled_forwarding_matches_reference_walk():
    """The compiled fast path must replay the dict-walk byte for byte.

    Same seed, same topology, same sends: every delivery, every traced
    arrival time, every loss draw and every per-interval bin must agree —
    the compiled schedule may only change *speed*, never outcomes.
    """
    fast = _flood(compiled=True)
    reference = _flood(compiled=False)
    assert fast == reference
    assert fast[2] > 0  # the comparison is not vacuous
    assert fast[3] > 0  # losses actually occurred on the lossy links


def test_compiled_forwarding_env_toggle(monkeypatch):
    from repro.net.network import Network

    monkeypatch.setenv("SHARQFEC_COMPILED_FORWARDING", "0")
    assert Network(Simulator()).compiled_forwarding is False
    monkeypatch.delenv("SHARQFEC_COMPILED_FORWARDING")
    assert Network(Simulator()).compiled_forwarding is True


# ------------------------------------------------------------ codec default


def test_default_codec_selection(monkeypatch):
    from repro.fec import ErasureCodec
    from repro.fec.fast import HAVE_NUMPY, NumpyErasureCodec, default_codec

    monkeypatch.delenv("SHARQFEC_PURE_FEC", raising=False)
    expected = NumpyErasureCodec if HAVE_NUMPY else ErasureCodec
    assert type(default_codec(8)) is expected
    monkeypatch.setenv("SHARQFEC_PURE_FEC", "1")
    assert type(default_codec(8)) is ErasureCodec


def test_numpy_and_pure_codecs_are_bit_identical():
    from repro.fec import ErasureCodec
    from repro.fec.fast import HAVE_NUMPY, NumpyErasureCodec

    if not HAVE_NUMPY:
        pytest.skip("numpy unavailable; only the pure path exists")
    k, width, n_repairs = 12, 97, 5
    data = [bytes((i * 37 + j * 11 + 5) % 256 for j in range(width)) for i in range(k)]
    pure, fast = ErasureCodec(k), NumpyErasureCodec(k)
    pure_repairs = pure.encode(data, n_repairs)
    fast_repairs = fast.encode(data, n_repairs)
    assert pure_repairs == fast_repairs
    # Drop the first n_repairs data blocks; both decoders must rebuild them.
    available = {i: data[i] for i in range(n_repairs, k)}
    for r in range(n_repairs):
        available[k + r] = pure_repairs[r]
    assert pure.decode(dict(available)) == fast.decode(dict(available)) == data
