"""Integration tests for the Network forwarding engine."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError, ScopeError, TopologyError
from repro.net.monitor import TrafficMonitor
from repro.net.network import Network
from repro.net.packet import Packet, UnicastPacket
from repro.sim.scheduler import Simulator


def test_multicast_reaches_all_subscribers(tree_net):
    net = tree_net
    group = net.create_group("g")
    got = {n: [] for n in (3, 4, 5, 6)}
    for n in got:
        net.subscribe(group.group_id, n, got[n].append)
    net.multicast(0, Packet("DATA", 0, group.group_id, 1000))
    net.sim.run()
    for n, packets in got.items():
        assert len(packets) == 1, f"node {n}"


def test_multicast_arrival_times_reflect_hops(line_net):
    net = line_net
    group = net.create_group("g")
    arrivals = {}
    for n in (1, 3):
        net.subscribe(group.group_id, n, lambda p, n=n: arrivals.setdefault(n, net.sim.now))
    net.multicast(0, Packet("DATA", 0, group.group_id, 1000))
    net.sim.run()
    # One hop: 10 ms latency + 0.8 ms serialization at 10 Mbit.
    assert arrivals[1] == pytest.approx(0.0108)
    assert arrivals[3] == pytest.approx(3 * 0.0108)


def test_sender_does_not_hear_own_multicast(star_net):
    net = star_net
    group = net.create_group("g")
    heard = []
    net.subscribe(group.group_id, 1, heard.append)
    net.subscribe(group.group_id, 2, heard.append)
    net.multicast(1, Packet("NACK", 1, group.group_id, 64))
    net.sim.run()
    assert len(heard) == 1  # only node 2


def test_any_subscriber_can_send(star_net):
    net = star_net
    group = net.create_group("g")
    got = {n: 0 for n in range(1, 5)}

    def make_handler(n):
        def handler(packet):
            got[n] += 1

        return handler

    for n in range(1, 5):
        net.subscribe(group.group_id, n, make_handler(n))
    net.multicast(3, Packet("REPAIR", 3, group.group_id, 1000))
    net.sim.run()
    assert got == {1: 1, 2: 1, 3: 0, 4: 1}


def test_lossy_link_drops_with_full_loss_simulated():
    sim = Simulator(seed=1)
    net = Network(sim)
    for _ in range(3):
        net.add_node()
    net.add_link(0, 1, 10e6, 0.01)
    net.add_link(1, 2, 10e6, 0.01, loss_rate=0.999999)
    group = net.create_group("g")
    got = []
    net.subscribe(group.group_id, 2, got.append)
    for _ in range(20):
        net.multicast(0, Packet("DATA", 0, group.group_id, 1000))
    sim.run()
    assert len(got) <= 1  # essentially everything dropped
    assert net.link(1, 2).packets_dropped >= 19


def test_loss_exempt_packets_never_dropped():
    sim = Simulator(seed=1)
    net = Network(sim)
    for _ in range(2):
        net.add_node()
    net.add_link(0, 1, 10e6, 0.01, loss_rate=0.9)
    group = net.create_group("g")
    got = []
    net.subscribe(group.group_id, 1, got.append)
    for _ in range(50):
        net.multicast(0, Packet("SESSION", 0, group.group_id, 100, loss_exempt=True))
    sim.run()
    assert len(got) == 50


def test_upstream_loss_deprives_whole_subtree(tree_net):
    """One loss on link 0->1 must cost both leaves 3 and 4 the packet."""
    net = tree_net
    net.set_link_loss(0, 1, 0.999999)
    group = net.create_group("g")
    got = {n: [] for n in (3, 4, 5, 6)}
    for n in got:
        net.subscribe(group.group_id, n, got[n].append)
    net.multicast(0, Packet("DATA", 0, group.group_id, 1000))
    net.sim.run()
    assert got[3] == [] and got[4] == []
    assert len(got[5]) == 1 and len(got[6]) == 1


def test_scoped_group_confined_to_scope(line_net):
    net = line_net
    scoped = net.create_group("zone", scope={1, 2})
    got = []
    net.subscribe(scoped.group_id, 2, got.append)
    with pytest.raises(ScopeError):
        net.subscribe(scoped.group_id, 3, got.append)
    with pytest.raises(ScopeError):
        net.multicast(0, Packet("FEC", 0, scoped.group_id, 1000))
    net.multicast(1, Packet("FEC", 1, scoped.group_id, 1000))
    net.sim.run()
    assert len(got) == 1


def test_scope_blocks_transit_even_between_in_scope_nodes(line_net):
    """Scope {0, 3} without the middle nodes: no path, must raise."""
    net = line_net
    group = net.create_group("broken", scope={0, 3})
    net.subscribe(group.group_id, 3, lambda p: None)
    with pytest.raises(RoutingError):
        net.multicast(0, Packet("DATA", 0, group.group_id, 1000))


def test_membership_change_invalidates_tree_cache(star_net):
    net = star_net
    group = net.create_group("g")
    got = {1: 0, 2: 0}
    h1 = lambda p: got.__setitem__(1, got[1] + 1)
    h2 = lambda p: got.__setitem__(2, got[2] + 1)
    net.subscribe(group.group_id, 1, h1)
    net.multicast(0, Packet("DATA", 0, group.group_id, 100))
    net.sim.run()
    net.subscribe(group.group_id, 2, h2)
    net.multicast(0, Packet("DATA", 0, group.group_id, 100))
    net.sim.run()
    assert got == {1: 2, 2: 1}


def test_unsubscribe_stops_delivery(star_net):
    net = star_net
    group = net.create_group("g")
    got = []
    net.subscribe(group.group_id, 1, got.append)
    net.multicast(0, Packet("DATA", 0, group.group_id, 100))
    net.sim.run()
    net.unsubscribe(group.group_id, 1, got.append)
    net.multicast(0, Packet("DATA", 0, group.group_id, 100))
    net.sim.run()
    assert len(got) == 1


def test_unicast_delivery(line_net):
    net = line_net
    got = []
    net.nodes[3].set_unicast_handler(got.append)
    net.unicast(UnicastPacket("PING", 0, 3, 100))
    net.sim.run()
    assert len(got) == 1
    assert got[0].dst == 3


def test_unicast_unknown_destination(line_net):
    with pytest.raises(RoutingError):
        line_net.unicast(UnicastPacket("PING", 0, 42, 100))


def test_monitor_observes_arrivals(tree_net):
    net = tree_net
    monitor = TrafficMonitor(bin_width=0.1)
    net.add_observer(monitor)
    group = net.create_group("g")
    for n in (3, 4):
        net.subscribe(group.group_id, n, lambda p: None)
    net.multicast(0, Packet("DATA", 0, group.group_id, 1000))
    net.sim.run()
    assert monitor.total(["DATA"]) == 2
    assert monitor.total(["DATA"], node=3) == 1
    assert monitor.sends == {"DATA": 1}


def test_true_rtt_and_path_loss(line_net):
    net = line_net
    assert net.true_rtt(0, 3) == pytest.approx(0.06)
    net.set_link_loss(0, 1, 0.1)
    net.set_link_loss(1, 2, 0.2)
    assert net.path_loss(0, 2) == pytest.approx(1 - 0.9 * 0.8)


def test_path_loss_sees_down_links_and_nodes_as_total_loss(line_net):
    net = line_net
    net.set_link_loss(0, 1, 0.1)
    assert net.path_loss(0, 2) == pytest.approx(0.1)
    net.set_link_up(1, 2, False)
    assert net.path_loss(0, 2) == pytest.approx(1.0)
    net.set_link_up(1, 2, True)
    net.set_node_up(1, False)
    assert net.path_loss(0, 2) == pytest.approx(1.0)


def test_path_loss_uses_stationary_rate_of_loss_models(line_net):
    from repro.faults import install_gilbert_elliott

    net = line_net
    install_gilbert_elliott(net, 0, 1, p_gb=0.05, p_bg=0.25, loss_bad=1.0)
    stationary = net.link(0, 1).loss_model.stationary_loss_rate
    assert 0.0 < stationary < 1.0
    assert net.path_loss(0, 1) == pytest.approx(stationary)


def test_topology_change_invalidates_cached_multicast_tree():
    """Regression: a multicast tree cached before a link flap must not be
    reused after the topology change reconverges (satellite of the
    reconvergence tentpole)."""
    sim = Simulator(seed=11)
    net = Network(sim)
    for _ in range(4):
        net.add_node()
    # Diamond: 0->1->3 (cheap) and 0->2->3 (dear) — tree prefers 0-1-3.
    net.add_link(0, 1, 10e6, 0.010)
    net.add_link(1, 3, 10e6, 0.010)
    net.add_link(0, 2, 10e6, 0.030)
    net.add_link(2, 3, 10e6, 0.030)
    group = net.create_group("g")
    got = []
    net.subscribe(group.group_id, 3, lambda p: got.append(round(sim.now, 6)))
    net.multicast(0, Packet("DATA", 0, group.group_id, 1000))  # caches tree
    sim.run()
    assert len(got) == 1
    net.set_link_up(1, 3, False)
    sim.run(until=sim.now + 2 * net.reconvergence_delay)
    net.multicast(0, Packet("DATA", 0, group.group_id, 1000))
    sim.run()
    # Rerouted via 0-2-3 instead of reusing the stale 0-1-3 tree.
    assert len(got) == 2
    assert net.link(2, 3).packets_sent >= 1


def test_duplicate_link_rejected(line_net):
    with pytest.raises(TopologyError):
        line_net.add_link(0, 1, 1e6, 0.01)


def test_self_loop_rejected(line_net):
    with pytest.raises(TopologyError):
        line_net.add_link(2, 2, 1e6, 0.01)


def test_node_id_collision_rejected(sim):
    net = Network(sim)
    net.add_node(node_id=5)
    with pytest.raises(TopologyError):
        net.add_node(node_id=5)


def test_deterministic_given_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        net = Network(sim)
        for _ in range(3):
            net.add_node()
        net.add_link(0, 1, 10e6, 0.01, loss_rate=0.3)
        net.add_link(1, 2, 10e6, 0.01, loss_rate=0.3)
        group = net.create_group("g")
        got = []
        net.subscribe(group.group_id, 2, lambda p: got.append(round(sim.now, 9)))
        for _ in range(50):
            net.multicast(0, Packet("DATA", 0, group.group_id, 1000))
        sim.run()
        return got

    assert run(7) == run(7)
    assert run(7) != run(8)
