"""Acceptance scenario for partition-tolerant ZCR election (ISSUE 7).

One seeded run on the two-zone healing topology stacks every robustness
mechanism at once:

* both zone representatives crash at the same instant mid-stream (liveness
  detection + full elections in two zones concurrently);
* the leaves of zone A are partitioned away, so when the old rep restarts
  the zone holds two simultaneous authorities — a genuine split brain;
* lossy links force real NACK/repair/injection traffic through the
  failovers;
* the partition heals, and reconciliation must deterministically collapse
  the zone back to a single representative with no repair extent
  preemptively injected twice across the merge.

Checked outcomes: eventual delivery for every receiver, no duplicate
delivery, single live ZCR per zone at quiescence, zero duplicate
injections after the heal, a populated bounded failover-latency metric in
the observer registry, and byte-identical replay of the whole scenario.
"""

from __future__ import annotations

from repro.core.config import SharqfecConfig
from repro.core.protocol import SharqfecProtocol
from repro.faults import FaultInjector, FaultPlan
from repro.net.network import Network
from repro.obs import RunObserver
from repro.scoping.zone import ZoneHierarchy
from repro.sim.scheduler import Simulator
from repro.testing import (
    RepairContainment,
    TraceRecorder,
    assert_eventual_delivery,
    assert_no_duplicate_delivery,
    assert_no_duplicate_injection,
    assert_replay_identical,
    assert_single_zcr_per_zone,
)

SEED = 20260808
STREAM_START = 6.0
HEAL_AT = 16.0


def build_network(sim: Simulator) -> Network:
    net = Network(sim)
    for _ in range(8):
        net.add_node()
    net.add_link(0, 1, 10e6, 0.010)   # source -> hub
    net.add_link(1, 2, 10e6, 0.015)   # hub -> head A
    net.add_link(2, 3, 10e6, 0.010)
    net.add_link(2, 4, 10e6, 0.010)
    net.add_link(3, 4, 10e6, 0.020)   # in-zone detour
    net.add_link(1, 5, 10e6, 0.015)   # hub -> head B
    net.add_link(5, 6, 10e6, 0.010)
    net.add_link(5, 7, 10e6, 0.010)
    return net


def build_hierarchy() -> ZoneHierarchy:
    h = ZoneHierarchy()
    root = h.add_root(range(8), name="Z0")
    h.add_zone(root.zone_id, {2, 3, 4}, name="A")
    h.add_zone(root.zone_id, {5, 6, 7}, name="B")
    return h


def build_plan() -> FaultPlan:
    plan = FaultPlan("double-crash-split-brain")
    # Repair pressure: both access trees lose packets during the stream.
    plan.set_loss(STREAM_START, 2, 3, 0.08)
    plan.set_loss(STREAM_START, 5, 6, 0.08)
    plan.set_loss(25.0, 2, 3, 0.0)
    plan.set_loss(25.0, 5, 6, 0.0)
    # Both zone representatives die at the same instant mid-stream and
    # come back after the zones have failed over to successors.
    plan.crash_restart(6.2, 2, down_for=5.0)
    plan.crash_restart(6.2, 5, down_for=5.0)
    # Zone A's leaves are cut off before the old rep returns: when node 2
    # restarts it re-elects itself on its side while node 3 (or 4) rules
    # the island — dual authority until the heal.
    plan.partition_flap(8.0, {3, 4}, heal_after=HEAL_AT - 8.0)
    return plan


def run_scenario() -> str:
    sim = Simulator(seed=SEED)
    net = build_network(sim)
    config = SharqfecConfig(n_packets=64, group_size=8)
    protocol = SharqfecProtocol(net, config, 0, list(range(1, 8)), build_hierarchy())
    FaultInjector(net, build_plan(), protocol=protocol).arm()
    context = f"seed={SEED} plan=double-crash-split-brain"
    with RunObserver(sim) as observer, TraceRecorder(sim) as recorder, \
            RepairContainment.for_protocol(protocol) as containment:
        protocol.start(1.0, STREAM_START)
        sim.run(until=150.0)
        # Exactly one live representative per zone survived reconciliation
        # (checked pre-stop: the invariant only counts live members).
        elected = assert_single_zcr_per_zone(protocol, context=context)
        protocol.stop()
    assert len(elected) == 2, f"{context}: expected both tree zones checked"

    assert_eventual_delivery(protocol, context=context)
    assert_no_duplicate_delivery(protocol, context=context)
    containment.assert_contained(context=context)
    # No repair extent was preemptively injected twice across the heal.
    assert_no_duplicate_injection(recorder.records, after=HEAL_AT, context=context)

    # The election lifecycle is observable: both zones suspected, elected
    # and failed over, and the worst suspect-to-adoption latency stayed
    # within the detector + election budget.
    counts = observer.zcr_event_counts()
    for event in ("suspect", "election", "takeover", "failover"):
        assert counts.get(event, 0) >= 1, f"{context}: no {event!r} events"
    assert counts.get("reconcile", 0) >= 0  # repair handoff is loss-dependent
    latency = observer.max_failover_latency()
    assert 0.0 < latency < 6.0, f"{context}: failover latency {latency}"
    return recorder.render()


def test_double_crash_with_partition_heals_cleanly_and_replays():
    assert_replay_identical(run_scenario, runs=2, context="partition-reconcile")
