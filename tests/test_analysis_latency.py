"""Tests for recovery-latency analysis and session-scaling measurement."""

from __future__ import annotations

import pytest

from repro.analysis.latency import (
    group_end_time,
    latency_stats,
    recovery_latencies,
)
from repro.core.config import SharqfecConfig
from repro.core.protocol import SharqfecProtocol
from repro.experiments.session_scaling import (
    growth_exponent,
    measure_point,
    ScalingPoint,
)
from repro.sim.scheduler import Simulator
from repro.topology.builders import build_star


def test_latency_stats_distribution():
    stats = latency_stats([0.1, 0.2, 0.3, 0.4])
    assert stats.count == 4
    assert stats.mean == pytest.approx(0.25)
    assert stats.median == pytest.approx(0.25)
    assert stats.worst == pytest.approx(0.4)


def test_latency_stats_empty():
    stats = latency_stats([])
    assert stats.count == 0 and stats.worst == 0.0


def run_small(seed=1, loss=0.1):
    sim = Simulator(seed=seed)
    net = build_star(sim, n_leaves=3, loss_rate=loss)
    cfg = SharqfecConfig(n_packets=32, scoping=False)
    proto = SharqfecProtocol(net, cfg, 0, [1, 2, 3])
    proto.start(1.0, 6.0)
    sim.run(until=30.0)
    assert proto.all_complete()
    return proto


def test_group_end_time_arithmetic():
    proto = run_small()
    # Group 0 ends at data_start + 15 * ipt; group 1 at + 31 * ipt.
    assert group_end_time(proto, 0, 6.0) == pytest.approx(6.0 + 15 * 0.01)
    assert group_end_time(proto, 1, 6.0) == pytest.approx(6.0 + 31 * 0.01)


def test_recovery_latencies_nonnegative_and_bounded():
    proto = run_small()
    samples = recovery_latencies(proto, data_start=6.0)
    # 3 receivers x 2 groups.
    assert len(samples) == 6
    assert all(s >= 0 for s in samples)
    assert max(samples) < 10.0


def test_lossless_run_latency_is_propagation_only():
    proto = run_small(seed=2, loss=0.0)
    samples = recovery_latencies(proto, data_start=6.0)
    # With no losses the only "recovery" delay is the last packet's flight
    # time (5 ms links + serialization) — far below any repair timescale.
    assert all(s < 0.05 for s in samples)


def test_completed_at_recorded():
    proto = run_small()
    for receiver in proto.receivers.values():
        for state in receiver.groups.values():
            assert state.completed_at is not None
            assert state.first_arrival is not None
            assert state.completed_at >= state.first_arrival


# ------------------------------------------------------------ scaling sweep


def test_measure_point_srm_state_is_full_mesh():
    point = measure_point(depth=2, fanout=2, protocol="SRM", duration=6.0)
    assert point.n_members == 7
    assert point.max_rtt_state == 6  # every peer tracked
    assert point.session_bytes_per_member > 0


def test_measure_point_sharqfec_state_reduced():
    srm = measure_point(depth=3, fanout=3, protocol="SRM", duration=6.0)
    sharq = measure_point(depth=3, fanout=3, protocol="SHARQFEC", duration=6.0)
    assert sharq.max_rtt_state < srm.max_rtt_state
    assert sharq.session_bytes_per_member < srm.session_bytes_per_member


def test_growth_exponent_fits_power_law():
    points = [
        ScalingPoint(10, "X", 100.0, 0, 0),
        ScalingPoint(100, "X", 10000.0, 0, 0),
    ]
    assert growth_exponent(points) == pytest.approx(2.0)
    assert growth_exponent(points[:1]) == 0.0
