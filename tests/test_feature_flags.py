"""FeatureFlags: explicit fields pin features; env vars remain the fallback."""

from __future__ import annotations

import pytest

from repro.core.config import FeatureFlags, SharqfecConfig
from repro.fec.codec import ErasureCodec
from repro.fec.fast import HAVE_NUMPY, NumpyErasureCodec, default_codec
from repro.hybrid.protocol import hybrid_enabled
from repro.net.network import Network
from repro.sim.scheduler import Simulator


def _clear_env(monkeypatch):
    for var in (
        "SHARQFEC_COMPILED_FORWARDING",
        "SHARQFEC_PURE_FEC",
        "SHARQFEC_HYBRID",
    ):
        monkeypatch.delenv(var, raising=False)


def test_defaults_with_clean_environment(monkeypatch):
    _clear_env(monkeypatch)
    flags = FeatureFlags()
    assert flags.compiled_forwarding_enabled() is True
    assert flags.pure_fec_forced() is False
    assert flags.hybrid_enabled() is True


@pytest.mark.parametrize(
    "var,value,method,expected",
    [
        ("SHARQFEC_COMPILED_FORWARDING", "0", "compiled_forwarding_enabled", False),
        ("SHARQFEC_COMPILED_FORWARDING", "1", "compiled_forwarding_enabled", True),
        ("SHARQFEC_PURE_FEC", "1", "pure_fec_forced", True),
        ("SHARQFEC_PURE_FEC", "0", "pure_fec_forced", False),
        ("SHARQFEC_HYBRID", "off", "hybrid_enabled", False),
        ("SHARQFEC_HYBRID", "0", "hybrid_enabled", False),
        ("SHARQFEC_HYBRID", "False", "hybrid_enabled", False),
        ("SHARQFEC_HYBRID", "on", "hybrid_enabled", True),
    ],
)
def test_environment_fallback(monkeypatch, var, value, method, expected):
    _clear_env(monkeypatch)
    monkeypatch.setenv(var, value)
    assert getattr(FeatureFlags(), method)() is expected


def test_explicit_field_beats_environment(monkeypatch):
    monkeypatch.setenv("SHARQFEC_COMPILED_FORWARDING", "1")
    monkeypatch.setenv("SHARQFEC_PURE_FEC", "0")
    monkeypatch.setenv("SHARQFEC_HYBRID", "on")
    flags = FeatureFlags(compiled_forwarding=False, pure_fec=True, hybrid=False)
    assert flags.compiled_forwarding_enabled() is False
    assert flags.pure_fec_forced() is True
    assert flags.hybrid_enabled() is False

    monkeypatch.setenv("SHARQFEC_COMPILED_FORWARDING", "0")
    monkeypatch.setenv("SHARQFEC_PURE_FEC", "1")
    monkeypatch.setenv("SHARQFEC_HYBRID", "off")
    flags = FeatureFlags(compiled_forwarding=True, pure_fec=False, hybrid=True)
    assert flags.compiled_forwarding_enabled() is True
    assert flags.pure_fec_forced() is False
    assert flags.hybrid_enabled() is True


def test_network_threads_flags(monkeypatch):
    monkeypatch.setenv("SHARQFEC_COMPILED_FORWARDING", "1")
    net = Network(Simulator(seed=1), flags=FeatureFlags(compiled_forwarding=False))
    assert net.compiled_forwarding is False
    assert net.flags.compiled_forwarding is False

    monkeypatch.setenv("SHARQFEC_COMPILED_FORWARDING", "0")
    assert Network(Simulator(seed=1)).compiled_forwarding is False
    monkeypatch.delenv("SHARQFEC_COMPILED_FORWARDING")
    assert Network(Simulator(seed=1)).compiled_forwarding is True


def test_default_codec_threads_flags(monkeypatch):
    monkeypatch.delenv("SHARQFEC_PURE_FEC", raising=False)
    assert type(default_codec(4, flags=FeatureFlags(pure_fec=True))) is ErasureCodec
    if HAVE_NUMPY:
        monkeypatch.setenv("SHARQFEC_PURE_FEC", "1")
        fast = default_codec(4, flags=FeatureFlags(pure_fec=False))
        assert type(fast) is NumpyErasureCodec


def test_hybrid_enabled_threads_flags(monkeypatch):
    monkeypatch.setenv("SHARQFEC_HYBRID", "on")
    assert hybrid_enabled(FeatureFlags(hybrid=False)) is False
    monkeypatch.setenv("SHARQFEC_HYBRID", "off")
    assert hybrid_enabled(FeatureFlags(hybrid=True)) is True
    assert hybrid_enabled() is False  # None -> env fallback


def test_sharqfec_config_carries_flags():
    cfg = SharqfecConfig()
    assert cfg.flags == FeatureFlags()
    pinned = SharqfecConfig(flags=FeatureFlags(hybrid=False))
    assert pinned.flags.hybrid_enabled() is False
    # Ablation-variant copies inherit the pinned toggles.
    assert pinned.ecsrm().flags.hybrid_enabled() is False
