"""Tests for the scoped channel plan over a real network."""

from __future__ import annotations

import pytest

from repro.errors import ScopeError
from repro.net.network import Network
from repro.net.packet import Packet
from repro.scoping.channels import ScopedChannels
from repro.scoping.zone import ZoneHierarchy
from repro.sim.scheduler import Simulator


@pytest.fixture
def setup():
    """Chain 0-1-2-3-4 with zones Z0={all}, Z1={2,3,4}, Z2={3,4}."""
    sim = Simulator(seed=0)
    net = Network(sim)
    for _ in range(5):
        net.add_node()
    for a in range(4):
        net.add_link(a, a + 1, 10e6, 0.01)
    h = ZoneHierarchy()
    z0 = h.add_root(range(5), name="Z0")
    z1 = h.add_zone(z0.zone_id, {2, 3, 4}, name="Z1")
    z2 = h.add_zone(z1.zone_id, {3, 4}, name="Z2")
    channels = ScopedChannels(net, h)
    return sim, net, h, channels, (z0, z1, z2)


def test_channel_plan_created(setup):
    sim, net, h, channels, (z0, z1, z2) = setup
    # 1 data group + 2 per zone.
    assert len(net.groups) == 1 + 2 * 3
    assert channels.repair_group(z1.zone_id) != channels.session_group(z1.zone_id)


def test_join_member_subscribes_full_chain(setup):
    sim, net, h, channels, (z0, z1, z2) = setup
    data, repair, session = [], [], []
    chain = channels.join_member(4, data.append, repair.append, session.append)
    assert [z.name for z in chain] == ["Z2", "Z1", "Z0"]
    groups = net.nodes[4].groups()
    assert channels.data_group_id in groups
    for zone in chain:
        assert channels.repair_group(zone.zone_id) in groups
        assert channels.session_group(zone.zone_id) in groups


def test_zone_repair_traffic_stays_inside_zone(setup):
    sim, net, h, channels, (z0, z1, z2) = setup
    inner, outer = [], []
    channels.join_member(4, lambda p: None, inner.append, lambda p: None)
    channels.join_member(0, lambda p: None, outer.append, lambda p: None)
    rg2 = channels.repair_group(z2.zone_id)
    net.multicast(3, Packet("FEC", 3, rg2, 1000))
    sim.run()
    assert len(inner) == 1
    assert outer == []  # node 0 is outside Z2; the boundary holds


def test_root_repair_traffic_reaches_everyone(setup):
    sim, net, h, channels, (z0, z1, z2) = setup
    got = {n: [] for n in (0, 4)}
    for n in got:
        channels.join_member(n, lambda p: None, got[n].append, lambda p: None)
    rg0 = channels.repair_group(z0.zone_id)
    net.multicast(2, Packet("FEC", 2, rg0, 1000))
    sim.run()
    assert len(got[0]) == 1 and len(got[4]) == 1


def test_out_of_scope_sender_rejected(setup):
    sim, net, h, channels, (z0, z1, z2) = setup
    channels.join_member(4, lambda p: None, lambda p: None, lambda p: None)
    with pytest.raises(ScopeError):
        net.multicast(0, Packet("FEC", 0, channels.repair_group(z2.zone_id), 1000))


def test_leave_member_unsubscribes(setup):
    sim, net, h, channels, (z0, z1, z2) = setup
    handlers = (lambda p: None, lambda p: None, lambda p: None)
    channels.join_member(3, *handlers)
    channels.leave_member(3, *handlers)
    assert net.nodes[3].groups() == []


def test_zone_of_group_reverse_lookup(setup):
    sim, net, h, channels, (z0, z1, z2) = setup
    assert channels.zone_of_group(channels.repair_group(z1.zone_id)) == z1.zone_id
    assert channels.zone_of_group(channels.session_group(z2.zone_id)) == z2.zone_id
    assert channels.zone_of_group(channels.data_group_id) is None
