"""Differential equivalence suite: hybrid fidelity vs. the packet engine.

The hybrid engine (docs/HYBRID.md) promises three different strengths of
equivalence, each pinned here:

* **byte-identical** when disabled: ``SHARQFEC_HYBRID=off`` must reproduce
  the packet engine's trace and summary exactly;
* **deterministic across engines**: a sharded hybrid run equals the
  in-process hybrid reference run record for record;
* **statistical** against packet fidelity: completion is exact (1.0 on
  recoverable scenarios), while NACK/drop totals agree in distribution —
  the loss draws come from a different RNG stream, so per-seed counts
  differ but seed-aggregated totals must stay within the documented
  tolerance (a factor of two, far wider than the observed ~15% skew).
"""

from __future__ import annotations

import pytest

from repro.core.config import SharqfecConfig
from repro.engine import ShardedRunSpec, run_reference, run_sharded
from repro.experiments.national_scale import national_spec
from repro.hybrid import HybridSharqfecProtocol
from repro.sim.scheduler import Simulator
from repro.testing import (
    assert_eventual_delivery,
    assert_no_duplicate_delivery,
)
from repro.testing.invariants import RepairContainment
from repro.topology.figure10 import build_figure10


def fig10_spec(seed: int = 1, fidelity: str = "packet", **kw) -> ShardedRunSpec:
    return ShardedRunSpec(
        topology="figure10",
        n_packets=32,
        seed=seed,
        capture_trace=True,
        fidelity=fidelity,
        **kw,
    )


def small_national(seed: int, fidelity: str, n_packets: int = 16) -> ShardedRunSpec:
    return national_spec(
        regions=2,
        cities_per_region=2,
        suburbs_per_city=2,
        subscribers_per_suburb=10,
        n_packets=n_packets,
        seed=seed,
        capture_trace=True,
        fidelity=fidelity,
    )


# --------------------------------------------------------- completion parity


def test_fig10_completion_parity():
    packet = run_reference(fig10_spec(fidelity="packet"))
    hybrid = run_reference(fig10_spec(fidelity="hybrid"))
    assert packet.completion == 1.0
    assert hybrid.completion == 1.0
    # The whole point of the hybrid engine: far fewer simulated events.
    assert hybrid.events < packet.events / 2


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_small_national_completion_parity(seed):
    packet = run_reference(small_national(seed, "packet"))
    hybrid = run_reference(small_national(seed, "hybrid"))
    assert packet.completion == 1.0
    assert hybrid.completion == 1.0


def test_statistical_tolerance_across_seeds():
    """Seed-aggregated NACK and drop totals agree within a factor of two.

    Per-seed counts are *expected* to differ (different RNG streams decide
    which packets die), so the tolerance is on aggregates — the observed
    skew is ~15% on NACKs and ~2% on drops; 2x is the documented bound.
    """
    seeds = [1, 2, 3, 4]
    p_nacks = p_drops = h_nacks = h_drops = 0
    for seed in seeds:
        p = run_reference(small_national(seed, "packet"))
        h = run_reference(small_national(seed, "hybrid"))
        p_nacks += p.nacks
        h_nacks += h.nacks
        p_drops += p.drops
        h_drops += h.drops
    assert p_nacks > 0 and h_nacks > 0
    assert 0.5 <= h_nacks / p_nacks <= 2.0
    assert 0.5 <= h_drops / p_drops <= 2.0


# ------------------------------------------------------ byte-identical modes


def test_hybrid_off_is_byte_identical_to_packet(monkeypatch):
    monkeypatch.setenv("SHARQFEC_HYBRID", "off")
    packet = run_reference(fig10_spec(fidelity="packet"))
    off = run_reference(fig10_spec(fidelity="hybrid"))
    assert off.trace == packet.trace
    assert off.nacks == packet.nacks
    assert off.events == packet.events
    assert off.completion == packet.completion
    p_summary = packet.run_summary()
    o_summary = off.run_summary()
    # The fidelity label is the only permitted difference.
    assert o_summary.pop("fidelity") == "hybrid"
    assert p_summary.pop("fidelity") == "packet"
    assert o_summary == p_summary


def test_sharded_hybrid_equals_reference(monkeypatch):
    monkeypatch.delenv("SHARQFEC_HYBRID", raising=False)
    spec = small_national(1, "hybrid")
    ref = run_reference(spec)
    sharded = run_sharded(spec, workers=2)
    assert sharded.trace == ref.trace
    assert sharded.nacks == ref.nacks
    assert sharded.events == ref.events
    assert sharded.completion == ref.completion
    assert sharded.drops == ref.drops


# -------------------------------------------------------- faults + invariants


def test_fault_plan_wakes_session_and_recovers():
    """A mid-stream link bounce must wake the session plane and still
    deliver everything; the woken run pays for real session traffic, so its
    event count rises well above an undisturbed hybrid run."""
    from repro.faults.plan import FaultPlan

    quiet = run_reference(fig10_spec(fidelity="hybrid"))
    plan = FaultPlan("bounce").link_down(7.0, 0, 1).link_up(9.0, 0, 1)
    woken = run_reference(fig10_spec(fidelity="hybrid", fault_plan=plan))
    packet = run_reference(fig10_spec(fidelity="packet", fault_plan=plan))
    assert woken.completion == 1.0
    assert packet.completion == 1.0
    assert woken.events > quiet.events


def test_invariants_on_direct_hybrid_protocol(monkeypatch):
    """Eventual delivery, no duplicate data, and repair containment hold
    when driving :class:`HybridSharqfecProtocol` directly (no engine)."""
    monkeypatch.delenv("SHARQFEC_HYBRID", raising=False)
    sim = Simulator(seed=5)
    topo = build_figure10(sim)
    cfg = SharqfecConfig(n_packets=32)
    proto = HybridSharqfecProtocol(
        topo.network, cfg, topo.source, topo.receivers, topo.hierarchy
    )
    with RepairContainment.for_protocol(proto) as containment:
        proto.start(session_start=1.0, data_start=6.0)
        sim.run(until=40.0)
    assert_eventual_delivery(proto)
    assert_no_duplicate_delivery(proto)
    containment.assert_contained()
