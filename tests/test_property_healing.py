"""Acceptance property test for the self-healing layer.

Hypothesis picks one mid-transfer disruption — a random link flap, a zone
rep crash-restart, or a random receiver crash-restart — on a fixed
two-zone topology.  After the disruption heals and routing reconverges,
the core invariants must still hold: eventual delivery within a bound,
no duplicate delivery, and repair containment.  And the identical
scenario run twice from one seed must produce byte-identical transcripts.

Unlike ``tests/test_property_faults.py`` this deliberately allows outages
that swallow whole tail groups at a churned receiver: the stream-extent
session gossip is what surfaces those, so the run horizon covers a few
session intervals past the heal.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.config import SharqfecConfig
from repro.core.protocol import SharqfecProtocol
from repro.faults import FaultInjector, FaultPlan
from repro.net.network import Network
from repro.scoping.zone import ZoneHierarchy
from repro.sim.scheduler import Simulator
from repro.testing import (
    RepairContainment,
    TraceRecorder,
    assert_eventual_delivery,
    assert_no_duplicate_delivery,
    assert_no_duplicate_injection,
    assert_recovery_within,
    assert_replay_identical,
    assert_single_zcr_per_zone,
    heal_deadline,
    property_max_examples,
)

N_PACKETS = 48
GROUP_SIZE = 8
STREAM_START = 6.0
# Disruptions land mid-transfer and heal before the run's cool-down.
FAULT_LO = STREAM_START + 0.05
FAULT_HI = STREAM_START + 0.25
DURATIONS = st.floats(min_value=0.05, max_value=0.20, allow_nan=False)

HEADS = (2, 5)
LEAVES = (3, 4, 6, 7)
# Tree edges eligible for flapping; 3-4 is an in-zone detour, so a 2-3
# flap exercises actual rerouting rather than a pure blackhole window.
FLAPPABLE = ((1, 2), (2, 3), (1, 5), (5, 6))


def build_network(sim: Simulator) -> Network:
    net = Network(sim)
    for _ in range(8):
        net.add_node()
    net.add_link(0, 1, 10e6, 0.010)   # source -> hub
    net.add_link(1, 2, 10e6, 0.015)   # hub -> head A
    net.add_link(2, 3, 10e6, 0.010)
    net.add_link(2, 4, 10e6, 0.010)
    net.add_link(3, 4, 10e6, 0.020)   # in-zone detour
    net.add_link(1, 5, 10e6, 0.015)   # hub -> head B
    net.add_link(5, 6, 10e6, 0.010)
    net.add_link(5, 7, 10e6, 0.010)
    return net


def build_hierarchy() -> ZoneHierarchy:
    h = ZoneHierarchy()
    root = h.add_root(range(8), name="Z0")
    h.add_zone(root.zone_id, {2, 3, 4}, name="A")
    h.add_zone(root.zone_id, {5, 6, 7}, name="B")
    return h


@st.composite
def healing_scenario(draw):
    kind = draw(st.sampled_from(["link_flap", "rep_crash", "receiver_crash"]))
    t = draw(st.floats(min_value=FAULT_LO, max_value=FAULT_HI, allow_nan=False))
    dur = draw(DURATIONS)
    plan = FaultPlan(kind)
    if kind == "link_flap":
        a, b = draw(st.sampled_from(FLAPPABLE))
        plan.link_down(t, a, b)
        plan.link_up(t + dur, a, b)
    elif kind == "rep_crash":
        plan.crash_restart(t, draw(st.sampled_from(HEADS)), down_for=dur)
    else:
        plan.crash_restart(t, draw(st.sampled_from(LEAVES)), down_for=dur)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return plan, seed


def run_scenario(plan: FaultPlan, seed: int) -> str:
    sim = Simulator(seed=seed)
    net = build_network(sim)
    config = SharqfecConfig(n_packets=N_PACKETS, group_size=GROUP_SIZE)
    protocol = SharqfecProtocol(net, config, 0, list(range(1, 8)), build_hierarchy())
    FaultInjector(net, plan, protocol=protocol).arm()
    with TraceRecorder(sim) as recorder, \
            RepairContainment.for_protocol(protocol) as containment:
        protocol.start(1.0, STREAM_START)
        sim.run(until=150.0)
        protocol.stop()
    context = f"seed={seed} plan={plan.describe()}"
    assert_eventual_delivery(protocol, context=context)
    assert_no_duplicate_delivery(protocol, context=context)
    assert_recovery_within(
        protocol, heal_deadline(net, plan, bound=100.0), context=context
    )
    containment.assert_contained(context=context)
    return recorder.render()


@given(healing_scenario())
@settings(max_examples=property_max_examples(5), deadline=None)
def test_healed_disruption_preserves_invariants_and_determinism(case):
    plan, seed = case
    assert_replay_identical(
        lambda: run_scenario(plan, seed),
        runs=2,
        context=f"seed={seed} plan={plan.describe()}",
    )


# ------------------------------------------------ split brain under partition

# Long enough that the isolated side's liveness detector (3s nominal, with
# up to 20% jitter) fires and it elects its own representative before the
# heal — a genuine dual-authority window, not just a blackhole.
PARTITION_DURATIONS = st.floats(min_value=4.5, max_value=6.5, allow_nan=False)


@st.composite
def partition_scenario(draw):
    t = draw(st.floats(min_value=FAULT_LO, max_value=FAULT_HI, allow_nan=False))
    dur = draw(PARTITION_DURATIONS)
    plan = FaultPlan("split-brain").partition_flap(t, {3, 4}, heal_after=dur)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return plan, t + dur, seed


def run_partition_scenario(plan: FaultPlan, heal_at: float, seed: int) -> str:
    sim = Simulator(seed=seed)
    net = build_network(sim)
    config = SharqfecConfig(n_packets=N_PACKETS, group_size=GROUP_SIZE)
    protocol = SharqfecProtocol(net, config, 0, list(range(1, 8)), build_hierarchy())
    FaultInjector(net, plan, protocol=protocol).arm()
    context = f"seed={seed} plan={plan.describe()}"
    with TraceRecorder(sim) as recorder, \
            RepairContainment.for_protocol(protocol) as containment:
        protocol.start(1.0, STREAM_START)
        sim.run(until=150.0)
        # Split-brain specifics, checked while agents are still live: after
        # the heal exactly one authority per zone survives...
        elected = assert_single_zcr_per_zone(protocol, context=context)
        assert elected, f"{context}: single-ZCR check covered no zone"
        protocol.stop()
    assert_eventual_delivery(protocol, context=context)
    assert_no_duplicate_delivery(protocol, context=context)
    assert_recovery_within(
        protocol, heal_deadline(net, plan, bound=100.0), context=context
    )
    containment.assert_contained(context=context)
    # ...and no repair extent was preemptively injected twice across the
    # merge.
    assert_no_duplicate_injection(recorder.records, after=heal_at, context=context)
    return recorder.render()


@given(partition_scenario())
@settings(max_examples=property_max_examples(4), deadline=None)
def test_partition_dual_elections_heal_without_duplicate_injection(case):
    plan, heal_at, seed = case
    assert_replay_identical(
        lambda: run_partition_scenario(plan, heal_at, seed),
        runs=2,
        context=f"seed={seed} plan={plan.describe()}",
    )
