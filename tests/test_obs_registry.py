"""Unit tests for repro.obs.binning and repro.obs.registry."""

from __future__ import annotations

import pytest

from repro.obs.binning import BOUNDARY_RTOL, bin_index, bin_midpoint, bin_start, n_bins
from repro.obs.registry import MetricsRegistry, TimeHistogram


# ----------------------------------------------------------------- binning


def test_bin_index_boundary_times():
    # int(0.3 / 0.1) == 2 — the bug this module exists to fix.
    assert bin_index(0.3, 0.1) == 3
    for k in range(200):
        assert bin_index(k * 0.1, 0.1) == k
    # Accumulated float error also snaps onto the boundary.
    assert bin_index(0.1 + 0.1 + 0.1, 0.1) == 3


def test_bin_index_interior_times():
    assert bin_index(0.0, 0.1) == 0
    assert bin_index(0.05, 0.1) == 0
    assert bin_index(0.2999, 0.1) == 2
    assert bin_index(0.3001, 0.1) == 3
    assert bin_index(12.34, 0.1) == 123


def test_bin_index_far_from_boundary_never_snaps():
    # The snap tolerance is relative and tiny; mid-bin times are untouched.
    assert bin_index(0.15, 0.1) == 1
    assert bin_index(1000.05, 0.1) == 10000


def test_n_bins_contract():
    assert n_bins(0.0, 0.1) == 0
    assert n_bins(-1.0, 0.1) == 0
    assert n_bins(0.3, 0.1) == 3
    assert n_bins(0.05, 0.1) == 1
    assert n_bins(0.31, 0.1) == 4
    for k in range(1, 100):
        assert n_bins(k * 0.1, 0.1) == k


def test_bin_edges_and_midpoints():
    assert bin_start(3, 0.1) == pytest.approx(0.3)
    assert bin_midpoint(0, 0.1) == pytest.approx(0.05)


def test_boundary_rtol_is_tight():
    # A time visibly inside a bin (1e-6 of a bin width) must not snap.
    assert BOUNDARY_RTOL < 1e-6
    assert bin_index(0.3 - 1e-6, 0.1) == 2


# ---------------------------------------------------------------- registry


def test_counter_identity_and_increment():
    reg = MetricsRegistry()
    c = reg.counter("repairs", zone=3, protocol="sharqfec")
    # Same (name, labels) in any keyword order resolves to the same object.
    assert reg.counter("repairs", protocol="sharqfec", zone=3) is c
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_and_add():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(2.0)
    g.add(-0.5)
    assert g.value == 1.5


def test_histogram_boundary_binning():
    hist = TimeHistogram("h", (), 0.1)
    hist.observe(0.3)
    hist.observe(0.05, amount=2.0)
    assert hist.bins == {3: 1.0, 0: 2.0}
    assert hist.series() == [2.0, 0, 0, 1.0]
    assert hist.series(t_end=0.6) == [2.0, 0, 0, 1.0, 0, 0]
    assert hist.count == 2
    assert hist.total == 3.0


def test_histogram_bin_width_conflict_raises():
    reg = MetricsRegistry()
    reg.histogram("h", 0.1, zone=1)
    with pytest.raises(ValueError):
        reg.histogram("h", 0.2, zone=1)


def test_labeled_totals_collapses_other_labels():
    reg = MetricsRegistry()
    reg.counter("repairs_sent", zone=1, protocol="a").inc(2)
    reg.counter("repairs_sent", zone=1, protocol="b").inc(3)
    reg.counter("repairs_sent", zone=2, protocol="a").inc(7)
    reg.counter("other", zone=1).inc(100)
    assert reg.labeled_totals("repairs_sent", "zone") == {1: 5, 2: 7}


def test_snapshot_restore_round_trip():
    reg = MetricsRegistry()
    reg.counter("nacks", zone=2).inc(9)
    reg.gauge("completion").set(0.75)
    reg.histogram("traffic", 0.1, kind="DATA").observe(0.3, 4.0)
    snap = reg.snapshot()

    rebuilt = MetricsRegistry()
    rebuilt.restore(snap)
    assert rebuilt.counter("nacks", zone=2).value == 9
    assert rebuilt.gauge("completion").value == 0.75
    hist = rebuilt.histogram("traffic", 0.1, kind="DATA")
    assert hist.bins == {3: 4.0}
    assert hist.total == 4.0
    assert rebuilt.snapshot() == snap
