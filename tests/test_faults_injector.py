"""FaultPlan DSL + FaultInjector scheduling, tracing and determinism."""

from __future__ import annotations

import pytest

from repro.core.config import SharqfecConfig
from repro.core.protocol import SharqfecProtocol
from repro.errors import FaultError, TopologyError
from repro.faults import FaultInjector, FaultPlan, install_gilbert_elliott
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.scheduler import Simulator
from repro.testing import (
    TraceRecorder,
    assert_eventual_delivery,
    assert_no_duplicate_delivery,
    assert_replay_identical,
    connected_receivers,
)

# ----------------------------------------------------------------- plan DSL


def test_plan_builder_validation():
    plan = FaultPlan("p")
    with pytest.raises(FaultError):
        plan.link_down(-1.0, 0, 1)
    with pytest.raises(FaultError):
        plan.set_loss(1.0, 0, 1, 1.5)
    with pytest.raises(FaultError):
        plan.partition(1.0, set())
    with pytest.raises(FaultError):
        plan.loss_ramp(2.0, 1.0, 0, 1, 0.0, 0.1)
    with pytest.raises(FaultError):
        plan.loss_ramp(1.0, 2.0, 0, 1, 0.0, 0.1, steps=1)
    with pytest.raises(FaultError):
        plan.gilbert_elliott(1.0, 0, 1, p_gb=0.0, p_bg=0.5)
    assert len(plan) == 0, "failed builder calls must not half-append"


def test_plan_actions_sorted_and_ramp_expansion():
    plan = (
        FaultPlan("ramp")
        .link_down(9.0, 0, 1)
        .loss_ramp(2.0, 4.0, 1, 2, 0.0, 0.3, steps=5)
        .link_up(1.0, 0, 1)
    )
    actions = plan.actions()
    assert [a.time for a in actions] == [1.0, 2.0, 2.5, 3.0, 3.5, 4.0, 9.0]
    ramp = [a for a in actions if a.kind == "set_loss"]
    rates = [a.param_dict()["rate"] for a in ramp]
    assert rates[0] == 0.0 and rates[-1] == pytest.approx(0.3)
    assert rates == sorted(rates)
    assert plan.last_time == 9.0
    assert "ramp" in plan.describe() and "set_loss" in plan.describe()


def test_crash_restart_expands_into_two_actions():
    plan = FaultPlan("churn").crash_restart(2.0, 3, down_for=0.5)
    assert [(a.time, a.kind) for a in plan.actions()] == [
        (2.0, "receiver_crash"),
        (2.5, "receiver_restart"),
    ]
    with pytest.raises(FaultError):
        plan.crash_restart(1.0, 3, down_for=0.0)


def test_plan_extend_merges_schedules():
    a = FaultPlan("a").link_down(1.0, 0, 1)
    b = FaultPlan("b").link_up(2.0, 0, 1)
    a.extend(b)
    assert [act.kind for act in a] == ["link_down", "link_up"]


# ---------------------------------------------------------------- injector


def line_network(seed=1, n=4):
    sim = Simulator(seed=seed)
    net = Network(sim)
    for _ in range(n):
        net.add_node()
    for i in range(n - 1):
        net.add_link(i, i + 1, 10e6, 0.01)
    return sim, net


def test_arm_validates_targets():
    sim, net = line_network()
    with pytest.raises(FaultError):
        FaultInjector(net, FaultPlan().node_crash(1.0, 99)).arm()
    with pytest.raises(TopologyError):
        FaultInjector(net, FaultPlan().link_down(1.0, 0, 3)).arm()
    with pytest.raises(FaultError):
        FaultInjector(net, FaultPlan().partition(1.0, {0, 99})).arm()


def test_actions_fire_at_their_times():
    sim, net = line_network()
    plan = FaultPlan().link_down(2.0, 1, 2).link_up(5.0, 1, 2)
    FaultInjector(net, plan).arm()
    observed = {}
    for t in (1.0, 3.0, 6.0):
        sim.at(t, lambda t=t: observed.__setitem__(t, net.link(1, 2).up))
    sim.run(until=10.0)
    assert observed == {1.0: True, 3.0: False, 6.0: True}


def test_partition_cuts_only_boundary_and_heal_is_exact():
    sim, net = line_network(n=5)
    # Pre-existing independent failure: 0-1 is already down.
    net.set_link_up(0, 1, False)
    plan = FaultPlan().partition(1.0, {2, 3, 4}).heal(2.0, {2, 3, 4})
    FaultInjector(net, plan).arm()
    state = {}
    sim.at(1.5, lambda: state.update(mid=(net.link(1, 2).up, net.link(2, 3).up)))
    sim.run(until=3.0)
    # During the partition only the boundary link 1-2 was cut.
    assert state["mid"] == (False, True)
    # Heal restored the boundary — but not the unrelated 0-1 failure.
    assert net.link(1, 2).up and net.link(2, 1).up
    assert not net.link(0, 1).up


def test_churn_requires_a_protocol():
    sim, net = line_network()
    with pytest.raises(FaultError, match="protocol"):
        FaultInjector(net, FaultPlan().join(1.0, 2)).arm()


def test_churn_validates_receiver_membership():
    sim, net = line_network()
    proto = SharqfecProtocol(net, SharqfecConfig(n_packets=16), 0, [1, 2, 3])
    plan = FaultPlan().crash_restart(1.0, 0, down_for=0.1)  # 0 is the source
    with pytest.raises(FaultError, match="not a session receiver"):
        FaultInjector(net, plan, protocol=proto).arm()


def test_churn_actions_drive_the_protocol():
    sim, net = line_network()
    proto = SharqfecProtocol(net, SharqfecConfig(n_packets=32), 0, [1, 2, 3])
    plan = FaultPlan("churn").crash_restart(6.05, 3, down_for=0.3)
    injector = FaultInjector(net, plan, protocol=proto).arm()
    proto.start(1.0, 6.0)
    down_state = {}
    sim.at(6.2, lambda: down_state.update(stopped=proto.receivers[3]._stopped))
    with TraceRecorder(sim) as recorder:
        sim.run(until=40.0)
    assert down_state["stopped"] is True
    assert not proto.receivers[3]._stopped
    assert recorder.count("fault.receiver_crash") == 1
    assert recorder.count("fault.receiver_restart") == 1
    assert len(injector.fired) == 2
    assert_eventual_delivery(proto)
    assert_no_duplicate_delivery(proto)


def test_disarm_cancels_pending_actions():
    sim, net = line_network()
    injector = FaultInjector(net, FaultPlan().link_down(5.0, 0, 1))
    injector.arm()
    sim.run(until=1.0)
    injector.disarm()
    sim.run(until=10.0)
    assert net.link(0, 1).up
    assert injector.fired == []


def test_faults_land_in_the_trace_stream():
    sim, net = line_network()
    plan = (
        FaultPlan("traced")
        .link_down(1.0, 0, 1)
        .link_up(2.0, 0, 1)
        .node_crash(3.0, 2)
        .node_restart(4.0, 2)
        .gilbert_elliott(5.0, 1, 2, p_gb=0.1, p_bg=0.2)
        .clear_loss_model(6.0, 1, 2)
    )
    injector = FaultInjector(net, plan).arm()
    with TraceRecorder(sim) as recorder:
        sim.run(until=10.0)
    assert recorder.count("fault.") == 6
    # Each up/down state change also triggers an IGP reconvergence event,
    # traced under its own (non-fault) category.
    assert recorder.count("net.reconverge") == 4
    categories = [
        r.category for r in recorder.records if r.category.startswith("fault.")
    ]
    assert categories == [
        "fault.link_down",
        "fault.link_up",
        "fault.node_crash",
        "fault.node_restart",
        "fault.gilbert_elliott",
        "fault.clear_loss_model",
    ]
    assert len(injector.fired) == 6
    # The mid-run Gilbert–Elliott install took effect and was reverted.
    assert net.link(1, 2).loss_model is None


def test_cannot_arm_twice_or_in_the_past():
    sim, net = line_network()
    injector = FaultInjector(net, FaultPlan().link_down(5.0, 0, 1)).arm()
    with pytest.raises(FaultError):
        injector.arm()
    sim.run(until=2.0)
    with pytest.raises(FaultError):
        FaultInjector(net, FaultPlan().link_down(1.0, 0, 1)).arm()


# ------------------------------------------------------------- determinism


def chaos_transcript() -> str:
    """A full SHARQFEC chaos run, rendered to a canonical transcript."""
    sim = Simulator(seed=1234)
    net = Network(sim)
    for _ in range(5):
        net.add_node()
    net.add_link(0, 1, 10e6, 0.010)
    net.add_link(1, 2, 10e6, 0.020)
    net.add_link(1, 3, 10e6, 0.020)
    net.add_link(3, 4, 10e6, 0.015)
    install_gilbert_elliott(net, 1, 2, p_gb=0.05, p_bg=0.25, slot_s=0.005)
    plan = (
        FaultPlan("chaos")
        .loss_ramp(6.0, 6.2, 0, 1, 0.0, 0.15, steps=4)
        .link_down(6.10, 1, 3)
        .link_up(6.22, 1, 3)
        .node_crash(6.25, 3)
        .node_restart(6.33, 3)
        .partition(6.35, {3, 4})
        .heal(6.42, {3, 4})
        .set_loss(6.45, 0, 1, 0.0)
    )
    FaultInjector(net, plan).arm()
    config = SharqfecConfig(n_packets=64, group_size=16)
    protocol = SharqfecProtocol(net, config, 0, [1, 2, 3, 4])
    with TraceRecorder(sim) as recorder:
        protocol.start(1.0, 6.0)
        sim.run(until=60.0)
        protocol.stop()
    assert_eventual_delivery(protocol)
    assert_no_duplicate_delivery(protocol)
    assert connected_receivers(net, 0, [1, 2, 3, 4]) == {1, 2, 3, 4}
    assert recorder.count("fault.") == len(plan)
    return recorder.render()


def test_seeded_chaos_run_replays_byte_identically():
    """Acceptance: fixed (FaultPlan, seed) ⇒ byte-identical trace output."""
    transcript = assert_replay_identical(chaos_transcript, runs=2)
    assert "fault.link_down" in transcript
    assert "fault.gilbert" not in transcript  # installed pre-run, not via plan
    assert "pkt.drop" in transcript, "the chaos run must actually lose packets"
