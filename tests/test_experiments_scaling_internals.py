"""Tests for the session-scaling experiment's hierarchy construction."""

from __future__ import annotations

from repro.experiments.session_scaling import _tree_hierarchy
from repro.sim.scheduler import Simulator
from repro.topology.builders import build_tree


def test_tree_hierarchy_partitions_subtrees():
    sim = Simulator()
    net, levels = build_tree(sim, depth=3, fanout=3)
    hierarchy = _tree_hierarchy(levels)
    hierarchy.validate()
    # One level-1 zone per root child, each covering that whole subtree.
    level1 = [z for z in hierarchy.zones() if z.level == 1]
    assert len(level1) == 3
    per_subtree = (len([n for lvl in levels[1:] for n in lvl])) // 3
    for zone in level1:
        assert len(zone.nodes) == per_subtree
    # Deep trees get grandchild zones too.
    level2 = [z for z in hierarchy.zones() if z.level == 2]
    assert len(level2) == 9
    for zone in level2:
        assert len(zone.nodes) == 1 + 3  # grandchild + its children


def test_tree_hierarchy_shallow_tree_single_level():
    sim = Simulator()
    net, levels = build_tree(sim, depth=2, fanout=2)
    hierarchy = _tree_hierarchy(levels)
    hierarchy.validate()
    assert hierarchy.depth() == 2  # root + subtree zones only


def test_every_nonroot_node_is_in_a_subtree_zone():
    sim = Simulator()
    net, levels = build_tree(sim, depth=3, fanout=2)
    hierarchy = _tree_hierarchy(levels)
    for node in (n for lvl in levels[1:] for n in lvl):
        chain = hierarchy.chain_for(node)
        assert len(chain) >= 2, f"node {node} only in the root zone"
