"""Unit tests for cancellable timers."""

from __future__ import annotations

import pytest

from repro.sim.scheduler import Simulator
from repro.sim.timers import Timer, TimerError


def test_timer_fires_once():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now), name="t")
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]
    assert not timer.running


def test_timer_cancel_prevents_fire():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(1))
    timer.start(1.0)
    timer.cancel()
    sim.run()
    assert fired == []


def test_start_while_running_raises():
    sim = Simulator()
    timer = Timer(sim, lambda: None, name="dup")
    timer.start(1.0)
    with pytest.raises(TimerError):
        timer.start(2.0)


def test_restart_replaces_pending_expiry():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.restart(3.0)
    sim.run()
    assert fired == [3.0]


def test_restart_works_when_idle():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.restart(1.5)
    sim.run()
    assert fired == [1.5]


def test_extend_to_pushes_expiry_later():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.extend_to(4.0)
    sim.run()
    assert fired == [4.0]


def test_extend_to_never_moves_expiry_earlier():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(5.0)
    timer.extend_to(2.0)
    assert timer.expires_at == 5.0
    sim.run()
    assert fired == [5.0]


def test_extend_to_arms_idle_timer():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.extend_to(2.0)
    sim.run()
    assert fired == [2.0]


def test_expires_at_reports_absolute_time():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    timer = Timer(sim, lambda: None)
    timer.start(2.0)
    assert timer.expires_at == 3.0


def test_timer_can_rearm_itself_from_callback():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: None)

    def tick():
        fired.append(sim.now)
        if len(fired) < 3:
            timer.start(1.0)

    timer._callback = tick  # rebind for the self-rearm scenario
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]
