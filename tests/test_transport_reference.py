"""Differential anchor for the Clock/Transport refactor.

The PR-9 refactor lifts the protocol agents behind the narrow
:class:`repro.transport.Clock` / :class:`repro.transport.Transport`
interfaces so the same state machines run over real asyncio UDP sockets.
The refactor's core promise is that **sim-mode behaviour is untouched**:
a seeded run must reproduce, bit for bit, the run the pre-refactor code
produced.

``tests/data/reference_run.json`` was generated from the pre-refactor
tree (commit 5811412) by running this module with
``SHARQFEC_REGEN_REFERENCE=1``; the tests replay the same scenarios and
compare describe-independent digests — event counts, completion,
NACK/repair tallies, a SHA-256 over the protocol-level trace transcript
(dict details only, no :meth:`Packet.describe` dependence) and a SHA-256
over the exact binned traffic records.  Any behavioural drift in the
agents, the forwarding engine, the RNG plumbing or the fault injector
shows up as a digest mismatch.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.experiments.common import variant_config
from repro.core.protocol import SharqfecProtocol
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.net.monitor import TrafficMonitor
from repro.obs.export import traffic_records
from repro.sim.scheduler import Simulator
from repro.srm.config import SrmConfig
from repro.srm.protocol import SrmProtocol
from repro.testing.invariants import TraceRecorder
from repro.topology.figure10 import build_figure10

FIXTURE = Path(__file__).parent / "data" / "reference_run.json"

#: Trace categories whose details are dicts/strings (never Packet objects),
#: so the transcript digest is independent of Packet.describe() formatting.
PROTOCOL_CATEGORIES = ["sharqfec.", "srm.", "zcr.", "fault."]


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _traffic_sha(monitor: TrafficMonitor) -> str:
    return _sha(json.dumps(traffic_records(monitor), sort_keys=True))


def _sharqfec_digest() -> dict:
    """Figure 10, 64 packets, Gilbert–Elliott burst loss on a tree edge."""
    sim = Simulator(seed=2026)
    topo = build_figure10(sim)
    monitor = TrafficMonitor(bin_width=0.1)
    topo.network.add_observer(monitor)
    plan = (
        FaultPlan("ref-ge")
        .gilbert_elliott(6.5, 0, 2, p_gb=0.2, p_bg=0.4, loss_bad=1.0)
        .clear_loss_model(9.5, 0, 2)
    )
    FaultInjector(topo.network, plan).arm()
    config = variant_config("SHARQFEC", 64)
    proto = SharqfecProtocol(
        topo.network, config, topo.source, topo.receivers, topo.hierarchy
    )
    with TraceRecorder(sim, categories=PROTOCOL_CATEGORIES) as rec:
        proto.start(1.0, 6.0)
        sim.run(until=proto.data_end_time(6.0) + 8.0)
    proto.stop()
    repairs = sum(
        sum(r.repairs_by_zone.values()) for r in proto.receivers.values()
    )
    return {
        "events_fired": sim.events_fired,
        "final_now": repr(sim.now),
        "completion": proto.completion_fraction(),
        "nacks": proto.total_nacks_sent(),
        "receiver_repairs": repairs,
        "trace_sha": _sha(rec.render()),
        "traffic_sha": _traffic_sha(monitor),
    }


def _srm_digest() -> dict:
    """SRM baseline on Figure 10 with plain Bernoulli loss (topology rates)."""
    sim = Simulator(seed=7)
    topo = build_figure10(sim)
    monitor = TrafficMonitor(bin_width=0.1)
    topo.network.add_observer(monitor)
    config = SrmConfig(n_packets=32)
    proto = SrmProtocol(topo.network, config, topo.source, topo.receivers)
    with TraceRecorder(sim, categories=PROTOCOL_CATEGORIES) as rec:
        proto.start(1.0, 6.0)
        sim.run(until=6.0 + 32 * config.inter_packet_interval + 8.0)
    proto.stop()
    return {
        "events_fired": sim.events_fired,
        "final_now": repr(sim.now),
        "completion": proto.completion_fraction(),
        "nacks": proto.total_nacks_sent(),
        "trace_sha": _sha(rec.render()),
        "traffic_sha": _traffic_sha(monitor),
    }


def _current_digests() -> dict:
    return {"sharqfec": _sharqfec_digest(), "srm": _srm_digest()}


def test_reference_fixture_exists():
    assert FIXTURE.exists(), (
        "missing pre-refactor reference fixture; regenerate with "
        "SHARQFEC_REGEN_REFERENCE=1 python -m pytest tests/test_transport_reference.py"
    )


def test_sim_mode_matches_pre_refactor_reference():
    if os.environ.get("SHARQFEC_REGEN_REFERENCE") == "1":
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(json.dumps(_current_digests(), indent=2, sort_keys=True) + "\n")
    reference = json.loads(FIXTURE.read_text())
    current = _current_digests()
    assert current == reference, (
        "sim-mode run diverged from the pre-refactor reference:\n"
        f"  reference: {json.dumps(reference, sort_keys=True)}\n"
        f"  current:   {json.dumps(current, sort_keys=True)}"
    )
