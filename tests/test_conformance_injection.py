"""Scripted preemptive-injection scenario (§4's automatic repairs).

A ZCR whose zone loses packets every group learns the loss level through
NACKs, then starts injecting FEC *before* any request — subsequent groups
recover without a single NACK.
"""

from __future__ import annotations

from repro.core.config import SharqfecConfig
from repro.core.pdus import FecPdu, NackPdu
from repro.core.protocol import SharqfecProtocol
from repro.net.network import Network
from repro.scoping.zone import ZoneHierarchy
from repro.sim.scheduler import Simulator


class EveryGroupLoss:
    """Drop the first data packet of every group toward one node."""

    def __init__(self, dst, group_size):
        self.dst = dst
        self.group_size = group_size
        self._count = 0

    def __call__(self, link, packet):
        if link.dst != self.dst or packet.kind != "DATA":
            return False
        self._count += 1
        return (self._count - 1) % self.group_size == 0


def test_injection_preempts_steady_loss():
    sim = Simulator(seed=5)
    net = Network(sim)
    for _ in range(4):
        net.add_node()
    # A long backbone: request windows scale with the distance to the
    # source (§4), giving the ZCR's end-of-group injection a realistic
    # head start over the leaves' NACK timers.
    net.add_link(0, 1, 10e6, 0.100)
    net.add_link(1, 2, 10e6, 0.010)
    net.add_link(1, 3, 10e6, 0.010)
    h = ZoneHierarchy()
    root = h.add_root(range(4), name="Z0")
    zone = h.add_zone(root.zone_id, {1, 2, 3}, name="edge")
    # Long enough that the ZLC sampling horizon (~2 s on this topology)
    # plus three EWMA samples fall well inside the stream.
    cfg = SharqfecConfig(n_packets=48 * 8, group_size=8)
    # Static ZCR: the hub represents the zone from the first group.
    proto = SharqfecProtocol(net, cfg, 0, [1, 2, 3], h,
                             static_zcrs={zone.zone_id: 1})
    # Leaf 2 loses one packet per group, every group, like clockwork.
    net.loss_oracle = EveryGroupLoss(dst=2, group_size=cfg.group_size)
    events = []
    original = net.multicast

    def spy(src, pkt):
        if isinstance(pkt, NackPdu):
            events.append(("NACK", pkt.group_id))
        elif isinstance(pkt, FecPdu):
            events.append(("FEC", pkt.group_id))
        return original(src, pkt)

    net.multicast = spy
    proto.start(1.0, 6.0)
    sim.run(until=6.0 + cfg.n_packets * cfg.inter_packet_interval + 15.0)
    assert proto.all_complete()
    nack_groups = [g for kind, g in events if kind == "NACK"]
    fec_groups = [g for kind, g in events if kind == "FEC"]
    # Early groups needed requests; the EWMA then locks onto "1 loss per
    # group" and the ZCR's automatic repairs silence the NACKs.
    early_nacks = sum(1 for g in nack_groups if g < 8)
    late_nacks = sum(1 for g in nack_groups if g >= cfg.n_groups - 8)
    assert early_nacks > 0, "the predictor must learn from somewhere"
    assert late_nacks == 0, (
        f"steady-state groups should be preemptively covered, "
        f"saw NACKs for groups {sorted(set(nack_groups))}"
    )
    # Repairs kept flowing for the late groups regardless (the injections).
    assert any(g >= cfg.n_groups - 8 for g in fec_groups)
