"""Tests for incremental group assembly."""

from __future__ import annotations

import pytest

from repro.errors import CodecError
from repro.fec.codec import ErasureCodec
from repro.fec.group import GroupAssembler


def test_completion_at_k_distinct_packets():
    asm = GroupAssembler(k=4)
    for i in range(3):
        assert asm.add(i) is True
        assert not asm.is_complete()
    asm.add(7)  # a repair packet counts toward completion
    assert asm.is_complete()


def test_duplicates_do_not_advance():
    asm = GroupAssembler(k=3)
    asm.add(0)
    assert asm.add(0) is False
    assert asm.received == 1
    assert asm.duplicates == 1


def test_deficit_counts_remaining_need():
    asm = GroupAssembler(k=5)
    assert asm.deficit() == 5
    asm.add(0)
    asm.add(9)
    assert asm.deficit() == 3
    for i in (1, 2, 3):
        asm.add(i)
    assert asm.deficit() == 0


def test_missing_data_lists_original_gaps():
    asm = GroupAssembler(k=4)
    asm.add(0)
    asm.add(2)
    asm.add(6)
    assert asm.missing_data() == [1, 3]


def test_highest_index():
    asm = GroupAssembler(k=4)
    assert asm.highest_index() == -1
    asm.add(2)
    asm.add(8)
    assert asm.highest_index() == 8


def test_negative_index_rejected():
    asm = GroupAssembler(k=2)
    with pytest.raises(CodecError):
        asm.add(-1)


def test_reconstruct_with_payloads():
    k = 4
    codec = ErasureCodec(k)
    data = [bytes([i] * 8) for i in range(k)]
    repairs = codec.encode(data, 2)
    asm = GroupAssembler(k, group_id=3, codec=codec)
    asm.add(0, data[0])
    asm.add(3, data[3])
    asm.add(4, repairs[0])
    asm.add(5, repairs[1])
    assert asm.reconstruct() == data


def test_reconstruct_before_complete_raises():
    asm = GroupAssembler(k=3)
    asm.add(0, b"x")
    with pytest.raises(CodecError):
        asm.reconstruct()


def test_identity_only_tracking_cannot_reconstruct():
    asm = GroupAssembler(k=2)
    asm.add(0)
    asm.add(1)
    assert asm.is_complete()
    with pytest.raises(CodecError):
        asm.reconstruct()


def test_indices_view_is_a_copy():
    asm = GroupAssembler(k=2)
    asm.add(0)
    view = asm.indices
    view.add(99)
    assert asm.received == 1
