"""Tests for the RTT table."""

from __future__ import annotations

import pytest

from repro.core.rtt import RttTable


def test_first_sample_taken_verbatim():
    t = RttTable(node_id=1)
    assert t.observe(2, 0.1) == pytest.approx(0.1)
    assert t.get(2) == pytest.approx(0.1)


def test_ewma_merge():
    t = RttTable(node_id=1, ewma_keep=0.75)
    t.observe(2, 0.1)
    merged = t.observe(2, 0.2)
    assert merged == pytest.approx(0.75 * 0.1 + 0.25 * 0.2)


def test_convergence_is_asymptotic():
    """Fig 11–13: estimates improve asymptotically toward the truth."""
    t = RttTable(node_id=1, ewma_keep=0.75)
    t.observe(2, 0.5)  # bad initial sample (suboptimal ZCR)
    errors = []
    for _ in range(20):
        t.observe(2, 0.1)
        errors.append(abs(t.get(2) - 0.1))
    assert errors == sorted(errors, reverse=True)
    assert errors[-1] < 0.01


def test_self_rtt_is_zero():
    t = RttTable(node_id=1)
    assert t.get(1) == 0.0
    assert t.one_way(1) == 0.0


def test_unknown_peer_is_none():
    t = RttTable(node_id=1)
    assert t.get(9) is None
    assert t.one_way(9) is None


def test_negative_sample_clamped():
    t = RttTable(node_id=1)
    t.observe(2, -0.5)
    assert t.get(2) == 0.0


def test_one_way_is_half_rtt():
    t = RttTable(node_id=1)
    t.observe(2, 0.08)
    assert t.one_way(2) == pytest.approx(0.04)


def test_echo_roundtrip():
    """The SRM-style timestamp echo: rtt = now - sent - held."""
    t = RttTable(node_id=1)
    # Peer 2 sent at t=10.0, we answer implicitly; at t=10.35 peer 2's echo
    # arrives saying it held our message 0.25s.
    rtt = t.close_echo(peer=2, peer_sent_at=10.0, elapsed=0.25, now=10.35)
    assert rtt == pytest.approx(0.1)


def test_record_heard_per_zone():
    t = RttTable(node_id=1)
    t.record_heard(zone_id=5, peer=2, peer_timestamp=1.0, now=1.1)
    t.record_heard(zone_id=6, peer=3, peer_timestamp=1.0, now=1.2)
    assert set(t.heard_in_zone(5)) == {2}
    assert set(t.heard_in_zone(6)) == {3}
    assert t.heard_in_zone(5)[2] == (1.0, 1.1)


def test_newer_message_overwrites_heard():
    t = RttTable(node_id=1)
    t.record_heard(5, 2, 1.0, 1.1)
    t.record_heard(5, 2, 2.0, 2.1)
    assert t.heard_in_zone(5)[2] == (2.0, 2.1)


def test_zcr_peer_tables():
    t = RttTable(node_id=1)
    t.set_zcr_peer_rtt(zcr=5, peer=8, rtt=0.06)
    assert t.zcr_peer_rtt(5, 8) == pytest.approx(0.06)
    assert t.zcr_peer_rtt(5, 9) is None
    assert t.zcr_peer_rtt(6, 8) is None
    t.set_zcr_peer_rtt(5, 8, -1.0)  # negative = unknown, ignored
    assert t.zcr_peer_rtt(5, 8) == pytest.approx(0.06)


def test_forget_peer():
    t = RttTable(node_id=1)
    t.observe(2, 0.1)
    t.record_heard(5, 2, 1.0, 1.1)
    t.forget(2)
    assert t.get(2) is None
    assert t.heard_in_zone(5) == {}


def test_state_size_counts_fig8_entries():
    t = RttTable(node_id=1)
    t.observe(2, 0.1)
    t.observe(3, 0.1)
    t.set_zcr_peer_rtt(5, 8, 0.06)
    assert t.state_size() == 3
