"""Tests for topology builders, Figure 10 and the national hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.sim.scheduler import Simulator
from repro.topology.builders import build_chain, build_star, build_tree
from repro.topology.figure10 import (
    BACKBONE_LOSSES,
    CHILD_GRANDCHILD_LOSS,
    HEAD_CHILD_LOSS,
    build_figure10,
)
from repro.topology.national import NationalParams, build_national_network


def test_chain_builder():
    sim = Simulator()
    net = build_chain(sim, 5, latency_s=0.01)
    assert len(net.nodes) == 5
    assert net.one_way_delay(0, 4) == pytest.approx(0.04)
    with pytest.raises(TopologyError):
        build_chain(sim, 1)


def test_star_builder_custom_latencies():
    sim = Simulator()
    net = build_star(sim, 3, leaf_latencies=[0.01, 0.02, 0.03])
    assert net.one_way_delay(0, 3) == pytest.approx(0.03)
    with pytest.raises(TopologyError):
        build_star(sim, 2, leaf_latencies=[0.01])


def test_tree_builder_levels():
    sim = Simulator()
    net, levels = build_tree(sim, depth=2, fanout=3)
    assert len(levels) == 3
    assert len(levels[0]) == 1 and len(levels[1]) == 3 and len(levels[2]) == 9
    assert len(net.nodes) == 13


def test_figure10_node_counts():
    sim = Simulator()
    topo = build_figure10(sim)
    assert len(topo.network.nodes) == 113
    assert len(topo.receivers) == 112
    assert len(topo.heads) == 7
    assert len(topo.leaf_receivers) == 84
    assert sum(len(v) for v in topo.children.values()) == 21


def test_figure10_hierarchy_shape():
    sim = Simulator()
    topo = build_figure10(sim)
    topo.hierarchy.validate()
    assert topo.hierarchy.depth() == 3
    assert len(topo.tree_zone_ids) == 7
    assert len(topo.child_zone_ids) == 21
    # Every tree zone holds 16 nodes; every child zone 5.
    for zid in topo.tree_zone_ids:
        assert len(topo.hierarchy.zone(zid).nodes) == 16
    for zid in topo.child_zone_ids:
        assert len(topo.hierarchy.zone(zid).nodes) == 5


def test_figure10_published_loss_extremes():
    """End-to-end losses span the paper's ~13.4%..28.3% leaf range (§6.2)."""
    sim = Simulator()
    topo = build_figure10(sim)
    leaf_losses = [topo.expected_total_loss(n) for n in topo.leaf_receivers]
    assert min(leaf_losses) == pytest.approx(0.134, abs=0.01)
    assert max(leaf_losses) == pytest.approx(0.283, abs=0.01)


def test_figure10_link_parameters():
    sim = Simulator()
    topo = build_figure10(sim)
    net = topo.network
    head = topo.heads[0]
    assert net.link(topo.source, head).bandwidth_bps == 45e6
    child = topo.children[head][0]
    assert net.link(head, child).loss_rate == HEAD_CHILD_LOSS
    gc = topo.grandchildren[child][0]
    assert net.link(child, gc).loss_rate == CHILD_GRANDCHILD_LOSS
    assert net.link(child, gc).latency_s == pytest.approx(0.020)


def test_figure10_lossless_mode():
    sim = Simulator()
    topo = build_figure10(sim, lossless=True)
    assert all(link.loss_rate == 0.0 for link in topo.network.links())


def test_figure10_worst_best_heads():
    sim = Simulator()
    topo = build_figure10(sim)
    worst_index = max(range(7), key=lambda i: BACKBONE_LOSSES[i])
    assert topo.worst_tree_head() == topo.heads[worst_index]
    assert topo.worst_tree_head() != topo.best_tree_head()


def test_national_network_small_build():
    sim = Simulator()
    params = NationalParams(
        regions=2, cities_per_region=2, suburbs_per_city=2, subscribers_per_suburb=3
    )
    nat = build_national_network(sim, params)
    nat.hierarchy.validate()
    # 1 source + 2 regions + 4 cities + 4*2*3 subscribers.
    assert len(nat.network.nodes) == 1 + 2 + 4 + 24
    assert nat.hierarchy.depth() == 4
    assert len(nat.receivers) == 2 + 4 + 24


def test_national_network_full_scale_refused():
    sim = Simulator()
    with pytest.raises(TopologyError):
        build_national_network(sim, NationalParams())
