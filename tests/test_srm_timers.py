"""Tests for SRM adaptive timers."""

from __future__ import annotations

import pytest

from repro.srm.config import SrmConfig
from repro.srm.timers import AdaptiveTimerState


def test_window_scales_with_distance():
    state = AdaptiveTimerState.for_requests(SrmConfig(adaptive=False))
    lo1, hi1 = state.window(0.01)
    lo2, hi2 = state.window(0.02)
    assert lo2 == pytest.approx(2 * lo1)
    assert hi2 == pytest.approx(2 * hi1)


def test_initial_windows_match_config():
    cfg = SrmConfig()
    req = AdaptiveTimerState.for_requests(cfg)
    lo, hi = req.window(1.0)
    assert lo == pytest.approx(cfg.c1)
    assert hi == pytest.approx(cfg.c1 + cfg.c2)
    rep = AdaptiveTimerState.for_replies(cfg)
    lo, hi = rep.window(1.0)
    assert lo == pytest.approx(cfg.d1)
    assert hi == pytest.approx(cfg.d1 + cfg.d2)


def test_duplicates_widen_window():
    state = AdaptiveTimerState.for_requests(SrmConfig())
    start0, width0 = state.start, state.width
    for _ in range(5):
        state.record_event(duplicates=3, delay_ratio=1.0)
    assert state.start > start0
    assert state.width > width0


def test_quiet_events_tighten_window():
    state = AdaptiveTimerState.for_requests(SrmConfig())
    width0 = state.width
    for _ in range(20):
        state.record_event(duplicates=0, delay_ratio=2.0)
    assert state.width < width0


def test_bounds_respected():
    cfg = SrmConfig()
    state = AdaptiveTimerState.for_requests(cfg)
    for _ in range(200):
        state.record_event(duplicates=10, delay_ratio=1.0)
    assert state.start <= cfg.c1_bounds[1]
    assert state.width <= cfg.c2_bounds[1]
    for _ in range(500):
        state.record_event(duplicates=0, delay_ratio=2.0)
    assert state.start >= cfg.c1_bounds[0]
    assert state.width >= cfg.c2_bounds[0]


def test_disabled_adaptation_is_static():
    state = AdaptiveTimerState.for_requests(SrmConfig(adaptive=False))
    start0, width0 = state.start, state.width
    for _ in range(50):
        state.record_event(duplicates=5, delay_ratio=0.1)
    assert state.start == start0
    assert state.width == width0


def test_averages_are_ewma():
    state = AdaptiveTimerState.for_requests(SrmConfig(adaptive=False))
    state.record_event(4, 1.0)
    assert state.ave_dup == pytest.approx(1.0)  # 0.75*0 + 0.25*4
    state.record_event(4, 1.0)
    assert state.ave_dup == pytest.approx(1.75)


def test_zero_distance_window_positive():
    state = AdaptiveTimerState.for_requests(SrmConfig())
    lo, hi = state.window(0.0)
    assert 0 < lo < hi
