"""Tests for the experiment drivers and the CLI plumbing.

Heavy figure runs live in benchmarks/; these tests exercise the drivers at
small packet counts and check the registry/CLI contract.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments.cli import main as cli_main
from repro.experiments.common import (
    DATA_REPAIR_KINDS,
    TrafficRunResult,
    run_traffic,
    variant_config,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.session_sim import ROLES, pick_sender, run_rtt_experiment
from repro.experiments import traffic_sim


def test_variant_config_parsing():
    cfg = variant_config("SHARQFEC", 64)
    assert cfg.scoping and cfg.injection and not cfg.sender_only
    cfg = variant_config("SHARQFEC(ns,ni,so)", 64)
    assert not cfg.scoping and not cfg.injection and cfg.sender_only
    cfg = variant_config("SHARQFEC(ni)", 64)
    assert cfg.scoping and not cfg.injection
    with pytest.raises(ConfigError):
        variant_config("SHARQFEC(xyz)", 64)
    with pytest.raises(ConfigError):
        variant_config("TCP", 64)


def test_run_traffic_sharqfec_small():
    result = run_traffic("SHARQFEC", n_packets=32, seed=1, drain=8.0)
    assert result.completion == 1.0
    assert result.protocol == "SHARQFEC"
    series = result.data_repair_series()
    assert len(series) > 60  # covers t=0..6s of silence plus the stream
    # The stream occupies ~10 packets per 0.1s bin from t=6.
    assert max(series) >= 8
    assert sum(series[:55]) == 0  # nothing before the data starts


def test_run_traffic_srm_small():
    result = run_traffic("SRM", n_packets=32, seed=1, drain=8.0)
    assert result.completion == 1.0
    assert sum(result.data_repair_series()) > 0
    assert result.events > 0


def test_nack_series_counts_only_nacks():
    result = run_traffic("SHARQFEC(ns,ni,so)", n_packets=32, seed=2, drain=8.0)
    nacks = sum(result.nack_series())
    assert nacks >= 0
    data_repair = sum(result.data_repair_series())
    assert data_repair > nacks


def test_source_series_includes_sends():
    result = run_traffic("SHARQFEC(ns,ni,so)", n_packets=32, seed=2, drain=8.0)
    src = result.source_data_repair_series()
    # At minimum the 32 data packets the source transmitted.
    assert sum(src) >= 32


def test_traffic_run_cache_reuses_results():
    traffic_sim.clear_cache()
    fig = traffic_sim.fig14(n_packets=24, seed=5, drain=6.0)
    fig2 = traffic_sim.fig15(n_packets=24, seed=5, drain=6.0)
    # Same underlying runs: object identity via the module cache.
    assert fig.runs["SRM"] is fig2.runs["SRM"]
    traffic_sim.clear_cache()


def test_figure_result_render_contains_stats():
    traffic_sim.clear_cache()
    fig = traffic_sim.fig17(n_packets=24, seed=5, drain=6.0)
    text = fig.render(every=10)
    assert "fig17" in text
    assert "SHARQFEC(ns,ni,so)" in text
    assert "peak" in text
    traffic_sim.clear_cache()


def test_pick_sender_roles():
    from repro.sim import Simulator
    from repro.topology import build_figure10

    topo = build_figure10(Simulator())
    seen = set()
    for role in ROLES:
        sender = pick_sender(topo, role)
        assert sender in topo.receivers
        seen.add(sender)
    assert len(seen) == 3
    with pytest.raises(ConfigError):
        pick_sender(topo, "nonsense")


def test_rtt_experiment_quick():
    result = run_rtt_experiment(role="child", n_nacks=2, interval=2.0,
                                first_nack_at=10.0, seed=2)
    assert len(result.rounds) == 2
    final = result.final_round()
    assert final.fraction_within(0.10) > 0.5
    assert result.improves_over_time()


def test_registry_covers_all_figures():
    expected = {"fig1", "fig8"} | {f"fig{i}" for i in range(11, 22)}
    expected |= {"scaling", "latejoin"}  # measured extras beyond the figures
    assert set(EXPERIMENTS) == expected


def test_run_experiment_analytic_figures():
    out1 = run_experiment("fig1")
    assert "27.0%" in out1 and "9.73%" in out1
    out8 = run_experiment("fig8")
    assert "630" in out8 and "10500" in out8.replace(",", "")


def test_run_experiment_unknown():
    with pytest.raises(ConfigError):
        run_experiment("fig99")


def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig14" in out and "fig8" in out


def test_cli_analytic_figure(capsys):
    assert cli_main(["fig8"]) == 0
    out = capsys.readouterr().out
    assert "Suburb" in out
