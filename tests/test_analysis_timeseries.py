"""Tests for time-series helpers and the report renderer."""

from __future__ import annotations

import pytest

from repro.analysis.report import render_series, render_table
from repro.analysis.timeseries import (
    max_ratio,
    repair_tail_length,
    series_stats,
    sum_series,
)


def test_series_stats_basics():
    st = series_stats([0, 3, 1, 3, 0])
    assert st.total == 7
    assert st.peak == 3
    assert st.peak_index == 1  # first occurrence
    assert st.mean_active == pytest.approx(7 / 3)


def test_series_stats_empty():
    st = series_stats([])
    assert st.total == 0 and st.peak == 0 and st.mean_active == 0


def test_repair_tail_length():
    # Data ends at index 4; traffic continues through index 9.
    series = [10] * 5 + [2, 1, 1, 0.4, 0.8]
    assert repair_tail_length(series, data_end_index=4) == 5
    assert repair_tail_length(series, data_end_index=4, threshold=0.9) == 3
    assert repair_tail_length([10, 10], data_end_index=4) == 0


def test_sum_series_uneven_lengths():
    assert sum_series([1, 2], [10, 20, 30]) == [11, 22, 30]
    assert sum_series([], [1]) == [1]


def test_max_ratio_ignores_idle_bins():
    assert max_ratio([10, 100], [1, 0.5], floor=1.0) == 10.0
    assert max_ratio([5], [0], floor=1.0) == 0.0


def test_render_table_alignment():
    out = render_table(["a", "bbb"], [[1, 2], [333, 4]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bbb" in lines[1]
    assert len({len(l) for l in lines[2:]}) <= 2  # consistent widths


def test_render_series_sampling():
    out = render_series({"x": [1.0] * 10}, bin_width=0.1, every=5)
    rows = [l for l in out.splitlines() if l and l[0].isdigit()]
    assert len(rows) == 2  # bins 0 and 5


def test_render_series_multiple_curves_align():
    out = render_series({"a": [1.0, 2.0], "b": [3.0]}, bin_width=0.1)
    rows = [l for l in out.splitlines() if l and l[0].isdigit()]
    assert len(rows) == 2
    assert "3.0" in rows[0]
    assert "2.0" in rows[1]
    assert "3.0" not in rows[1]  # b has no value in bin 1


def test_render_series_empty():
    assert render_series({}, title="nothing") == "nothing"
