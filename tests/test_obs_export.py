"""End-to-end export/reload tests: run → JSONL → loaders → identical series."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.obsload import (
    ObsLoadError,
    load_metrics,
    load_trace,
    mean_series_from_export,
    monitor_from_export,
    read_jsonl,
)
from repro.experiments.common import (
    DATA_REPAIR_KINDS,
    ObservabilityOptions,
    observe_runs,
    run_slug,
    run_traffic,
)
from repro.obs.export import (
    FORMAT,
    JsonlTraceWriter,
    build_manifest,
    export_metrics,
    git_revision,
)
from repro.net.monitor import PacketEvent, TrafficMonitor
from repro.obs.recorder import RunObserver
from repro.sim.scheduler import Simulator

N_PACKETS = 12
SEED = 5


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    """One observed SHARQFEC run exported to disk (shared by the tests)."""
    root = tmp_path_factory.mktemp("obs")
    options = ObservabilityOptions(
        metrics_dir=str(root / "metrics"),
        trace_dir=str(root / "trace"),
        zone_traffic=True,
    )
    with observe_runs(options):
        result = run_traffic("SHARQFEC", n_packets=N_PACKETS, seed=SEED, drain=5.0)
    slug = run_slug("SHARQFEC", N_PACKETS, SEED, drain=5.0)
    return {
        "result": result,
        "metrics": os.path.join(options.metrics_dir, f"{slug}.metrics.jsonl"),
        "trace": os.path.join(options.trace_dir, f"{slug}.trace.jsonl"),
    }


def test_manifest_pins_run_parameters(exported):
    manifest = next(read_jsonl(exported["metrics"]))
    assert manifest["record"] == "manifest"
    assert manifest["format"] == FORMAT
    assert manifest["seed"] == SEED
    assert manifest["protocol"] == "SHARQFEC"
    assert manifest["topology"] == "figure10"
    assert manifest["n_packets"] == N_PACKETS
    assert manifest["bin_width"] == pytest.approx(0.1)
    assert manifest["git_rev"] == git_revision()
    assert isinstance(manifest["config"], dict)
    assert manifest["config"]["n_packets"] == N_PACKETS


def test_reloaded_monitor_reproduces_series_bit_for_bit(exported):
    result = exported["result"]
    rebuilt = monitor_from_export(exported["metrics"])
    assert rebuilt.bin_width == result.monitor.bin_width
    for node in result.receivers + [result.source]:
        assert rebuilt.series(DATA_REPAIR_KINDS, node, t_end=result.run_end) == (
            result.monitor.series(DATA_REPAIR_KINDS, node, t_end=result.run_end)
        )
        assert rebuilt.series(["NACK"], node, t_end=result.run_end) == (
            result.monitor.series(["NACK"], node, t_end=result.run_end)
        )
    assert rebuilt.mean_series(
        DATA_REPAIR_KINDS, result.receivers, t_end=result.run_end
    ) == result.monitor.mean_series(
        DATA_REPAIR_KINDS, result.receivers, t_end=result.run_end
    )
    assert rebuilt.send_series(
        DATA_REPAIR_KINDS, result.source, t_end=result.run_end
    ) == result.monitor.send_series(
        DATA_REPAIR_KINDS, result.source, t_end=result.run_end
    )
    assert rebuilt.drops == result.monitor.drops
    assert rebuilt.sends == result.monitor.sends
    assert rebuilt.drops_by_kind() == result.monitor.drops_by_kind()


def test_figure_series_rebuild_from_disk(exported):
    """The Figure 14-style mean-receiver curve rebuilt purely from JSONL."""
    result = exported["result"]
    series = mean_series_from_export(
        exported["metrics"], DATA_REPAIR_KINDS, result.receivers
    )
    assert series == result.data_repair_series()
    assert len(series) > 0


def test_run_summary_and_counters(exported):
    result = exported["result"]
    export = load_metrics(exported["metrics"])
    assert export.run_summary is not None
    assert export.run_summary["completion"] == result.completion
    assert export.run_summary["n_packets"] == N_PACKETS
    assert export.run_summary["run_end"] == result.run_end
    # Protocol NACK counters agree with the protocol's own total.
    assert export.counter_total("nacks_sent") == result.nacks_sent
    # Zone-traffic histograms made it to disk.
    assert any(h["name"] == "zone_traffic" for h in export.histograms)


def test_trace_export_loads_and_covers_run(exported):
    result = exported["result"]
    trace = load_trace(exported["trace"])
    assert trace.manifest["kind"] == "trace"
    cats = trace.categories()
    assert cats.get("pkt.send", 0) > 0
    assert cats.get("pkt.recv", 0) > 0
    # The CBR source sends exactly n_packets DATA packets.
    data_sends = [
        r
        for r in trace.filter("pkt.send")
        if r["detail"].get("kind") == "DATA" and r["node"] == result.source
    ]
    assert len(data_sends) == N_PACKETS
    assert all(isinstance(r["t"], float) for r in trace.records)


def test_loader_rejects_bad_files(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ObsLoadError):
        load_metrics(str(empty))

    headerless = tmp_path / "headerless.jsonl"
    headerless.write_text(json.dumps({"record": "traffic"}) + "\n")
    with pytest.raises(ObsLoadError):
        load_metrics(str(headerless))

    badformat = tmp_path / "badformat.jsonl"
    badformat.write_text(
        json.dumps({"record": "manifest", "format": "someone.else.v9"}) + "\n"
    )
    with pytest.raises(ObsLoadError):
        load_trace(str(badformat))

    badjson = tmp_path / "bad.jsonl"
    badjson.write_text("{not json\n")
    with pytest.raises(ObsLoadError):
        list(read_jsonl(str(badjson)))


def test_export_metrics_standalone_monitor(tmp_path):
    """export_metrics works without a registry (monitor-only round trip)."""
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_receive(PacketEvent(0.3, 1, "DATA", 1000, True))
    mon.on_drop(PacketEvent(0.4, 2, "FEC", 500, True))
    path = str(tmp_path / "m.jsonl")
    export_metrics(
        path,
        build_manifest("metrics", run="unit", seed=0, bin_width=0.1),
        monitor=mon,
    )
    rebuilt = monitor_from_export(path)
    assert rebuilt.series(["DATA"], 1) == [0, 0, 0, 1]
    assert rebuilt.drop_series(["FEC"], 2) == [0, 0, 0, 0, 1]
    assert rebuilt.total_bytes(["DATA"]) == 1000


def test_jsonl_trace_writer_streams_incrementally(tmp_path):
    sim = Simulator(seed=1)
    path = str(tmp_path / "stream.trace.jsonl")
    with JsonlTraceWriter(path, build_manifest("trace", run="unit")) as writer:
        observer = RunObserver(sim, trace_sink=writer).attach()
        sim.tracer.emit(0.5, "sharqfec.nack", 3, {"zone": 1})
        sim.tracer.emit(0.6, "net.reconverge", -1, None)
        observer.detach()
        assert writer.records_written == 2
    trace = load_trace(path)
    assert [r["cat"] for r in trace.records] == ["sharqfec.nack", "net.reconverge"]
    # Nothing buffered in memory: the observer list stays empty.
    assert observer.trace_records == []
