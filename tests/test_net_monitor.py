"""Unit tests for the traffic monitor."""

from __future__ import annotations

import pytest

from repro.net.monitor import PacketEvent, TrafficMonitor


def ev(time, node, kind="DATA", size=1000, subscriber=True):
    return PacketEvent(time, node, kind, size, subscriber)


def test_bins_accumulate_per_interval():
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_receive(ev(0.01, 1))
    mon.on_receive(ev(0.09, 1))
    mon.on_receive(ev(0.15, 1))
    assert mon.series(["DATA"], 1) == [2, 1]


def test_non_subscriber_arrivals_excluded_by_default():
    mon = TrafficMonitor()
    mon.on_receive(ev(0.0, 1, subscriber=False))
    assert mon.total(["DATA"]) == 0
    forwarding = TrafficMonitor(count_forwarding=True)
    forwarding.on_receive(ev(0.0, 1, subscriber=False))
    assert forwarding.total(["DATA"]) == 1


def test_series_merges_kinds():
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_receive(ev(0.05, 1, kind="DATA"))
    mon.on_receive(ev(0.05, 1, kind="FEC"))
    mon.on_receive(ev(0.05, 1, kind="NACK"))
    assert mon.series(["DATA", "FEC"], 1) == [2]
    assert mon.series(["NACK"], 1) == [1]


def test_series_pads_to_t_end():
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_receive(ev(0.05, 1))
    assert mon.series(["DATA"], 1, t_end=0.5) == [1, 0, 0, 0, 0]


def test_empty_series():
    mon = TrafficMonitor()
    assert mon.series(["DATA"], 1) == []
    assert mon.series(["DATA"], 1, t_end=0.3) == [0, 0, 0]


def test_mean_series_averages_over_nodes():
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_receive(ev(0.05, 1))
    mon.on_receive(ev(0.05, 1))
    mon.on_receive(ev(0.05, 2))
    assert mon.mean_series(["DATA"], [1, 2]) == [1.5]
    assert mon.mean_series(["DATA"], []) == []


def test_totals_and_bytes():
    mon = TrafficMonitor()
    mon.on_receive(ev(0.0, 1, size=100))
    mon.on_receive(ev(0.0, 2, size=200))
    assert mon.total(["DATA"]) == 2
    assert mon.total(["DATA"], node=2) == 1
    assert mon.total_bytes(["DATA"]) == 300
    assert mon.total_bytes(["DATA"], node=1) == 100


def test_sends_and_drops_counted():
    mon = TrafficMonitor()
    mon.on_send(ev(0.0, 0, kind="NACK"))
    mon.on_send(ev(0.0, 0, kind="NACK"))
    mon.on_drop(ev(0.0, 1))
    assert mon.sends == {"NACK": 2}
    assert mon.drops == 1


def test_nodes_seen():
    mon = TrafficMonitor()
    mon.on_receive(ev(0.0, 5))
    mon.on_receive(ev(0.0, 2))
    assert mon.nodes_seen() == [2, 5]


def test_bin_times_midpoints():
    mon = TrafficMonitor(bin_width=0.1)
    assert mon.bin_times(3) == pytest.approx([0.05, 0.15, 0.25])


def test_invalid_bin_width():
    with pytest.raises(ValueError):
        TrafficMonitor(bin_width=0.0)
