"""Unit tests for the traffic monitor."""

from __future__ import annotations

import pytest

from repro.net.monitor import PacketEvent, TrafficMonitor


def ev(time, node, kind="DATA", size=1000, subscriber=True):
    return PacketEvent(time, node, kind, size, subscriber)


def test_bins_accumulate_per_interval():
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_receive(ev(0.01, 1))
    mon.on_receive(ev(0.09, 1))
    mon.on_receive(ev(0.15, 1))
    assert mon.series(["DATA"], 1) == [2, 1]


def test_non_subscriber_arrivals_excluded_by_default():
    mon = TrafficMonitor()
    mon.on_receive(ev(0.0, 1, subscriber=False))
    assert mon.total(["DATA"]) == 0
    forwarding = TrafficMonitor(count_forwarding=True)
    forwarding.on_receive(ev(0.0, 1, subscriber=False))
    assert forwarding.total(["DATA"]) == 1


def test_series_merges_kinds():
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_receive(ev(0.05, 1, kind="DATA"))
    mon.on_receive(ev(0.05, 1, kind="FEC"))
    mon.on_receive(ev(0.05, 1, kind="NACK"))
    assert mon.series(["DATA", "FEC"], 1) == [2]
    assert mon.series(["NACK"], 1) == [1]


def test_series_pads_to_t_end():
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_receive(ev(0.05, 1))
    assert mon.series(["DATA"], 1, t_end=0.5) == [1, 0, 0, 0, 0]


def test_empty_series():
    mon = TrafficMonitor()
    assert mon.series(["DATA"], 1) == []
    assert mon.series(["DATA"], 1, t_end=0.3) == [0, 0, 0]


def test_mean_series_averages_over_nodes():
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_receive(ev(0.05, 1))
    mon.on_receive(ev(0.05, 1))
    mon.on_receive(ev(0.05, 2))
    assert mon.mean_series(["DATA"], [1, 2]) == [1.5]
    assert mon.mean_series(["DATA"], []) == []


def test_totals_and_bytes():
    mon = TrafficMonitor()
    mon.on_receive(ev(0.0, 1, size=100))
    mon.on_receive(ev(0.0, 2, size=200))
    assert mon.total(["DATA"]) == 2
    assert mon.total(["DATA"], node=2) == 1
    assert mon.total_bytes(["DATA"]) == 300
    assert mon.total_bytes(["DATA"], node=1) == 100


def test_sends_and_drops_counted():
    mon = TrafficMonitor()
    mon.on_send(ev(0.0, 0, kind="NACK"))
    mon.on_send(ev(0.0, 0, kind="NACK"))
    mon.on_drop(ev(0.0, 1))
    assert mon.sends == {"NACK": 2}
    assert mon.drops == 1


def test_nodes_seen():
    mon = TrafficMonitor()
    mon.on_receive(ev(0.0, 5))
    mon.on_receive(ev(0.0, 2))
    assert mon.nodes_seen() == [2, 5]


def test_bin_times_midpoints():
    mon = TrafficMonitor(bin_width=0.1)
    assert mon.bin_times(3) == pytest.approx([0.05, 0.15, 0.25])


def test_invalid_bin_width():
    with pytest.raises(ValueError):
        TrafficMonitor(bin_width=0.0)


# --------------------------------------------------------------- bin edges


def test_boundary_arrival_lands_in_its_own_bin():
    """An arrival at exactly t = k * bin_width belongs to bin k.

    The naive ``int(t / w)`` misplaces these: ``0.3 / 0.1`` is
    2.9999999999999996 in binary floating point, so packet arrivals at bin
    boundaries used to land one bin early.
    """
    mon = TrafficMonitor(bin_width=0.1)
    for k in range(1, 50):
        mon.on_receive(ev(k * 0.1, 1))
    series = mon.series(["DATA"], 1)
    assert series[0] == 0
    assert series[1:] == [1] * 49


def test_boundary_arrival_from_accumulated_time():
    # 0.1 + 0.1 + 0.1 != 0.3 exactly, but is within rounding of bin 3.
    t = 0.1 + 0.1 + 0.1
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_receive(ev(t, 1))
    assert mon.series(["DATA"], 1) == [0, 0, 0, 1]


def test_interior_arrivals_unaffected_by_boundary_snap():
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_receive(ev(0.299, 1))
    mon.on_receive(ev(0.301, 1))
    assert mon.series(["DATA"], 1) == [0, 0, 1, 1]


def test_send_and_drop_use_same_binning():
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_send(ev(0.3, 1))
    mon.on_drop(ev(0.3, 1))
    assert mon.send_series(["DATA"], 1) == [0, 0, 0, 1]
    assert mon.drop_series(["DATA"], 1) == [0, 0, 0, 1]


def test_t_end_on_boundary_yields_exactly_k_bins():
    mon = TrafficMonitor(bin_width=0.1)
    assert len(mon.series(["DATA"], 1, t_end=0.3)) == 3
    assert len(mon.series(["DATA"], 1, t_end=0.30000000000000004)) == 3


# ------------------------------------------------------- empty-series edges


def test_empty_series_contract():
    mon = TrafficMonitor(bin_width=0.1)
    # No data, no t_end: empty.
    assert mon.series(["DATA"], 1) == []
    assert mon.send_series(["DATA"], 1) == []
    assert mon.drop_series(["DATA"], 1) == []
    assert mon.mean_series(["DATA"], [1, 2]) == []
    assert mon.node_traffic_series(["DATA"], 1) == []
    # t_end = 0.0 is zero bins, not a clamped [0].
    assert mon.series(["DATA"], 1, t_end=0.0) == []
    # Sub-bin t_end still rounds up to one bin.
    assert mon.series(["DATA"], 1, t_end=0.05) == [0]


def test_series_extends_past_t_end_when_data_does():
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_receive(ev(0.55, 1))
    assert mon.series(["DATA"], 1, t_end=0.2) == [0, 0, 0, 0, 0, 1]


# ------------------------------------------------------ per-(kind,node) drops


def test_drops_binned_per_kind_and_node():
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_drop(ev(0.05, 1, kind="DATA"))
    mon.on_drop(ev(0.05, 1, kind="FEC"))
    mon.on_drop(ev(0.15, 2, kind="DATA"))
    # Aggregate stays backward compatible.
    assert mon.drops == 3
    assert mon.drop_total() == 3
    assert mon.drop_total(kinds=["DATA"]) == 2
    assert mon.drop_total(node=1) == 2
    assert mon.drop_total(kinds=["FEC"], node=2) == 0
    assert mon.drops_by_kind() == {"DATA": 2, "FEC": 1}
    assert mon.drops_by_node() == {1: 2, 2: 1}
    assert mon.drop_series(["DATA", "FEC"], 1) == [2]
    assert mon.drop_series(["DATA"], 2) == [0, 1]


# ----------------------------------------------------------- export/reload


def test_load_record_round_trips_every_series():
    mon = TrafficMonitor(bin_width=0.1)
    mon.on_receive(ev(0.05, 1, kind="DATA", size=100))
    mon.on_receive(ev(0.3, 1, kind="FEC", size=50))
    mon.on_send(ev(0.1, 0, kind="NACK"))
    mon.on_drop(ev(0.2, 2, kind="DATA"))

    rebuilt = TrafficMonitor(bin_width=0.1)
    for (kind, node), (bins, packets, nbytes) in mon.receive_records():
        rebuilt.load_record("recv", kind, node, bins, packets, nbytes)
    for (kind, node), bins in mon.send_records():
        rebuilt.load_record("send", kind, node, bins)
    for (kind, node), (bins, packets, nbytes) in mon.drop_records():
        rebuilt.load_record("drop", kind, node, bins, packets, nbytes)

    assert rebuilt.series(["DATA", "FEC"], 1) == mon.series(["DATA", "FEC"], 1)
    assert rebuilt.send_series(["NACK"], 0) == mon.send_series(["NACK"], 0)
    assert rebuilt.drop_series(["DATA"], 2) == mon.drop_series(["DATA"], 2)
    assert rebuilt.sends == mon.sends
    assert rebuilt.drops == mon.drops
    assert rebuilt.total_bytes(["DATA", "FEC"]) == mon.total_bytes(["DATA", "FEC"])


def test_load_record_accepts_string_bin_keys():
    mon = TrafficMonitor(bin_width=0.1)
    mon.load_record("recv", "DATA", 1, {"3": 2})
    assert mon.series(["DATA"], 1) == [0, 0, 0, 2]
    assert mon.total(["DATA"]) == 2


def test_load_record_rejects_unknown_direction():
    mon = TrafficMonitor()
    with pytest.raises(ValueError):
        mon.load_record("sideways", "DATA", 1, {})
