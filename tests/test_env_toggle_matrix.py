"""The env-toggle equivalence matrix.

``SHARQFEC_COMPILED_FORWARDING`` (compiled vs interpreted forwarding) and
``SHARQFEC_PURE_FEC`` (pure-python vs accelerated codec) select
implementations, not behaviors: every combination must produce the same
simulation, event for event.  Both toggles are read at runtime (network
construction / codec construction), so the matrix runs in-process.

The check is maximally strict: the exported trace and metrics JSONL files
of all four combinations must be byte-identical.
"""

from __future__ import annotations

import itertools
import os

import pytest

from repro.experiments.common import (
    ObservabilityOptions,
    observe_runs,
    run_slug,
    run_traffic,
)

N_PACKETS = 16
SEED = 7

COMBOS = list(itertools.product(["0", "1"], ["0", "1"]))


def _run_combo(tmp_path, monkeypatch, compiled: str, pure_fec: str):
    monkeypatch.setenv("SHARQFEC_COMPILED_FORWARDING", compiled)
    monkeypatch.setenv("SHARQFEC_PURE_FEC", pure_fec)
    root = tmp_path / f"c{compiled}_f{pure_fec}"
    options = ObservabilityOptions(
        metrics_dir=str(root / "metrics"), trace_dir=str(root / "trace")
    )
    with observe_runs(options):
        result = run_traffic("SHARQFEC", n_packets=N_PACKETS, seed=SEED, drain=5.0)
    slug = run_slug("SHARQFEC", N_PACKETS, SEED, drain=5.0)
    with open(os.path.join(options.trace_dir, f"{slug}.trace.jsonl"), "rb") as f:
        trace_bytes = f.read()
    with open(os.path.join(options.metrics_dir, f"{slug}.metrics.jsonl"), "rb") as f:
        metrics_bytes = f.read()
    return result, trace_bytes, metrics_bytes


def test_forwarding_and_codec_toggles_are_behavior_preserving(tmp_path, monkeypatch):
    results = {}
    for compiled, pure_fec in COMBOS:
        results[(compiled, pure_fec)] = _run_combo(
            tmp_path, monkeypatch, compiled, pure_fec
        )

    baseline_result, baseline_trace, baseline_metrics = results[("1", "0")]
    assert len(baseline_trace.splitlines()) > N_PACKETS  # a real trace
    for combo, (result, trace_bytes, metrics_bytes) in results.items():
        assert trace_bytes == baseline_trace, f"trace diverged for {combo}"
        assert metrics_bytes == baseline_metrics, f"metrics diverged for {combo}"
        assert result.completion == baseline_result.completion
        assert result.nacks_sent == baseline_result.nacks_sent
        assert result.events == baseline_result.events


def test_toggles_select_distinct_implementations(monkeypatch):
    """The matrix is meaningful: the toggles really switch code paths."""
    from repro.fec.fast import default_codec
    from repro.net.network import Network
    from repro.sim.scheduler import Simulator

    from repro.fec.codec import ErasureCodec
    from repro.fec.fast import HAVE_NUMPY

    monkeypatch.setenv("SHARQFEC_PURE_FEC", "1")
    pure = default_codec(4)
    assert type(pure) is ErasureCodec
    monkeypatch.setenv("SHARQFEC_PURE_FEC", "0")
    fast = default_codec(4)
    if HAVE_NUMPY:
        assert type(fast) is not ErasureCodec

    monkeypatch.setenv("SHARQFEC_COMPILED_FORWARDING", "1")
    compiled_net = Network(Simulator(seed=1))
    monkeypatch.setenv("SHARQFEC_COMPILED_FORWARDING", "0")
    interpreted_net = Network(Simulator(seed=1))
    assert compiled_net.compiled_forwarding
    assert not interpreted_net.compiled_forwarding
