"""Unit tests for the event queue."""

from __future__ import annotations

from repro.sim.events import Event, EventQueue


def test_pop_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, fired.append, ("c",))
    q.push(1.0, fired.append, ("a",))
    q.push(2.0, fired.append, ("b",))
    while q:
        event = q.pop()
        event.fire()
    assert fired == ["a", "b", "c"]


def test_same_time_fires_in_schedule_order():
    q = EventQueue()
    fired = []
    for tag in range(10):
        q.push(1.0, fired.append, (tag,))
    while q:
        q.pop().fire()
    assert fired == list(range(10))


def test_cancel_skips_event():
    q = EventQueue()
    fired = []
    keep = q.push(1.0, fired.append, ("keep",))
    drop = q.push(0.5, fired.append, ("drop",))
    q.cancel(drop)
    assert len(q) == 1
    while q:
        q.pop().fire()
    assert fired == ["keep"]
    assert keep.time == 1.0


def test_cancel_is_idempotent():
    q = EventQueue()
    event = q.push(1.0, lambda: None)
    q.cancel(event)
    q.cancel(event)
    assert len(q) == 0


def test_peek_time_skips_cancelled():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.cancel(first)
    assert q.peek_time() == 2.0


def test_peek_time_empty_is_none():
    q = EventQueue()
    assert q.peek_time() is None
    event = q.push(1.0, lambda: None)
    q.cancel(event)
    assert q.peek_time() is None


def test_pop_empty_returns_none():
    q = EventQueue()
    assert q.pop() is None


def test_clear_drops_everything():
    q = EventQueue()
    for t in range(5):
        q.push(float(t), lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.pop() is None


def test_event_ordering_dunder():
    a = Event(1.0, 0, lambda: None)
    b = Event(1.0, 1, lambda: None)
    c = Event(0.5, 2, lambda: None)
    assert a < b
    assert c < a


def test_len_tracks_live_events():
    q = EventQueue()
    events = [q.push(float(i), lambda: None) for i in range(4)]
    assert len(q) == 4
    q.cancel(events[1])
    assert len(q) == 3
    q.pop()
    assert len(q) == 2
