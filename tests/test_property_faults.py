"""Property-based chaos testing: random fault plans on random trees.

Hypothesis generates a random multicast tree and a random *healing* fault
plan (every injected fault is reverted before the stream's final packets),
then asserts SHARQFEC's core guarantees: every still-connected receiver
eventually reconstructs the full stream, and no receiver is handed a data
packet twice.

Faults are confined to the middle of the data stream on purpose: it keeps
eventual delivery a theorem rather than a coin flip (the stream-extent
session gossip *can* surface a fully-lost tail group, but only on the
session cadence, which a bounded run should not have to wait out).
Tail-swallowing outages are exercised separately in
``tests/test_property_healing.py``.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.config import SharqfecConfig
from repro.core.protocol import SharqfecProtocol
from repro.faults import FaultPlan
from repro.net.network import Network
from repro.sim.scheduler import Simulator
from repro.testing import (
    assert_eventual_delivery,
    assert_no_duplicate_delivery,
    connected_receivers,
    property_max_examples,
)

# Stream shape: 48 packets at 10 ms -> data occupies [6.0, 6.48).
N_PACKETS = 48
GROUP_SIZE = 8
STREAM_START = 6.0
STREAM_END = STREAM_START + N_PACKETS * 0.01
# Faults start after the stream is underway and are all healed before the
# final two groups, leaving a clean tail for tail-group detection.
FAULT_LO = STREAM_START + 0.02
FAULT_HI = STREAM_START + 0.30
HEAL_BY = STREAM_START + 0.36

fault_times = st.floats(
    min_value=FAULT_LO, max_value=FAULT_HI, allow_nan=False
)
durations = st.floats(min_value=0.01, max_value=0.06, allow_nan=False)


def build_tree(sim: Simulator, parents):
    """Node 0 is the source; node i > 0 hangs off ``parents[i - 1]``."""
    net = Network(sim)
    for _ in range(len(parents) + 1):
        net.add_node()
    for child, parent in enumerate(parents, start=1):
        net.add_link(parent, child, 10e6, 0.01)
    return net


def subtree_of(parents, root: int):
    """All nodes at or below ``root`` in the tree encoded by ``parents``."""
    nodes = {root}
    changed = True
    while changed:
        changed = False
        for child, parent in enumerate(parents, start=1):
            if parent in nodes and child not in nodes:
                nodes.add(child)
                changed = True
    return nodes


@st.composite
def tree_and_plan(draw):
    n_nodes = draw(st.integers(min_value=4, max_value=8))
    parents = [
        draw(st.integers(min_value=0, max_value=i)) for i in range(n_nodes - 1)
    ]
    plan = FaultPlan("prop")
    n_faults = draw(st.integers(min_value=1, max_value=4))
    for _ in range(n_faults):
        kind = draw(st.sampled_from(["link", "crash", "loss", "partition"]))
        t = draw(fault_times)
        end = min(t + draw(durations), HEAL_BY)
        if kind == "link":
            child = draw(st.integers(min_value=1, max_value=n_nodes - 1))
            plan.link_down(t, parents[child - 1], child)
            plan.link_up(end, parents[child - 1], child)
        elif kind == "crash":
            node = draw(st.integers(min_value=1, max_value=n_nodes - 1))
            plan.node_crash(t, node)
            plan.node_restart(end, node)
        elif kind == "loss":
            child = draw(st.integers(min_value=1, max_value=n_nodes - 1))
            rate = draw(
                st.floats(min_value=0.1, max_value=0.9, allow_nan=False)
            )
            plan.set_loss(t, parents[child - 1], child, rate)
            plan.set_loss(end, parents[child - 1], child, 0.0)
        else:
            root = draw(st.integers(min_value=1, max_value=n_nodes - 1))
            nodes = subtree_of(parents, root)
            plan.partition(t, nodes)
            plan.heal(end, nodes)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return parents, plan, seed


@given(tree_and_plan())
@settings(max_examples=property_max_examples(8), deadline=None)
def test_random_healing_faults_preserve_delivery(case):
    parents, plan, seed = case
    sim = Simulator(seed=seed)
    net = build_tree(sim, parents)
    receivers = list(range(1, len(parents) + 1))
    from repro.faults import FaultInjector

    FaultInjector(net, plan).arm()
    config = SharqfecConfig(n_packets=N_PACKETS, group_size=GROUP_SIZE)
    protocol = SharqfecProtocol(net, config, 0, receivers)
    protocol.start(1.0, STREAM_START)
    sim.run(until=90.0)
    protocol.stop()

    # Every fault healed, so every receiver must still be connected ...
    survivors = connected_receivers(net, 0, receivers)
    assert survivors == set(receivers), (
        f"plan {plan.describe()} did not fully heal: "
        f"disconnected {set(receivers) - survivors}"
    )
    # ... and must have reconstructed the entire stream, exactly once.
    context = f"seed={seed} plan={plan.describe()}"
    assert_eventual_delivery(protocol, context=context)
    assert_no_duplicate_delivery(protocol, context=context)
