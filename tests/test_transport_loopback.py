"""Loopback SHARQFEC over real asyncio UDP sockets.

One event loop hosts the relay plus one sender and two receiver
:class:`~repro.transport.runtime.NodeRuntime` endpoints — the same wiring
``scripts/loopback_demo.py`` spreads across processes, compressed into a
test.  The relay injects Gilbert–Elliott burst loss per destination, and
the assertion is the simulation suite's own eventual-delivery invariant
running against :class:`ProtocolView`.

Wall-clock bounded: the stream is short (48 packets at 100 pkt/s) and the
timeout generous, so the test passes comfortably on slow CI yet fails
fast if delivery wedges.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import SharqfecConfig
from repro.testing.invariants import assert_eventual_delivery
from repro.transport.api import Clock, Transport
from repro.transport.runtime import NodeRuntime, ProtocolView
from repro.transport.udp import UdpRelay, UdpTransport, gilbert_elliott_factory
from repro.transport.wire import encode

MEMBERS = [0, 1, 2]
SOURCE = 0


def _small_config() -> SharqfecConfig:
    # 6 FEC groups of 8 packets, 0.48 s of CBR at the paper's 100 pkt/s.
    return SharqfecConfig(group_size=8, n_packets=48)


async def _run_session(loss_factory, timeout: float = 45.0):
    relay = UdpRelay(loss_factory=loss_factory)
    addr = await relay.start()
    nodes = [
        NodeRuntime(nid, MEMBERS, SOURCE, addr, config=_small_config(), seed=7)
        for nid in MEMBERS
    ]
    try:
        for node in nodes:
            await node.start(session_start=0.5, data_start=2.0)
        results = await asyncio.gather(
            *(node.wait_complete(timeout) for node in nodes)
        )
        stats = await nodes[0].transport.relay_stats()
        return nodes, results, relay, stats
    finally:
        for node in nodes:
            node.stop()
        relay.close()


def test_lossless_loopback_delivers():
    """Sanity: with no loss proxy, plain CBR delivery completes."""

    async def main():
        nodes, results, relay, stats = await _run_session(loss_factory=None)
        assert all(results), f"incomplete nodes: {results}"
        assert relay.lossy_dropped == 0
        assert stats["measured_loss"] == 0.0
        view = ProtocolView(
            nodes[1].config, {n.node_id: n.agent for n in nodes if not n.is_sender}
        )
        assert_eventual_delivery(view, context="lossless loopback")
        assert view.completion_fraction() == 1.0
        # Receivers announced DONE to the relay roster.
        assert set(stats["done"]) == {1, 2}

    asyncio.run(main())


def test_lossy_loopback_recovers_full_stream():
    """The acceptance gate: >=10% injected loss, yet eventual delivery."""

    async def main():
        # Stationary bad-state fraction p_gb/(p_gb+p_bg) = 1/6 of slots
        # drop everything: comfortably past the 10% floor in expectation.
        factory = gilbert_elliott_factory(p_gb=0.05, p_bg=0.25, seed=11)
        nodes, results, relay, stats = await _run_session(loss_factory=factory)
        assert all(results), (
            f"receivers never completed under loss; relay stats: {relay.stats()}"
        )
        view = ProtocolView(
            nodes[1].config, {n.node_id: n.agent for n in nodes if not n.is_sender}
        )
        assert_eventual_delivery(view, context="lossy loopback")
        # Loss really happened — this is a recovery test, not a lucky run.
        assert relay.lossy_dropped > 0
        assert stats["lossy_dropped"] == relay.lossy_dropped
        assert stats["measured_loss"] > 0.0
        # Recovery traffic flowed (NACKs and repairs, not just luck).
        receivers = [n.agent for n in nodes if not n.is_sender]
        assert any(r.nacks_sent > 0 for r in receivers) or relay.lossy_dropped < 5

    asyncio.run(main())


def test_runtime_satisfies_transport_and_clock_protocols():
    async def main():
        relay = UdpRelay()
        addr = await relay.start()
        node = NodeRuntime(1, MEMBERS, SOURCE, addr, config=_small_config())
        try:
            assert isinstance(node.clock, Clock)
            assert isinstance(node.transport, Transport)
            assert not node.is_sender
            assert NodeRuntime(0, MEMBERS, SOURCE, addr).is_sender
        finally:
            node.stop()
            relay.close()

    asyncio.run(main())


def test_runtime_rejects_bad_membership():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        NodeRuntime(1, [1, 2], source_id=0, relay_addr=("127.0.0.1", 1))
    with pytest.raises(ConfigError):
        NodeRuntime(9, [0, 1, 2], source_id=0, relay_addr=("127.0.0.1", 1))


def test_deterministic_group_plan_across_processes():
    """Independent transports derive identical group ids from the same plan."""

    async def main():
        from repro.scoping.channels import ScopedChannels

        relay = UdpRelay()
        addr = await relay.start()
        nodes = [
            NodeRuntime(nid, MEMBERS, SOURCE, addr, config=_small_config())
            for nid in MEMBERS
        ]
        try:
            for node in nodes:
                await node.start(session_start=60.0, data_start=60.0)
            plans = [
                (
                    n.channels.data_group_id,
                    n.channels.repair_group(n.hierarchy.root.zone_id),
                    n.channels.session_group(n.hierarchy.root.zone_id),
                )
                for n in nodes
            ]
            assert plans[0] == plans[1] == plans[2]
            assert len(set(plans[0])) == 3  # three distinct channels
        finally:
            for node in nodes:
                node.stop()
            relay.close()

    asyncio.run(main())


def test_relay_ignores_malformed_and_unknown_frames():
    async def main():
        from repro.core.pdus import DataPdu

        relay = UdpRelay()
        addr = await relay.start()
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            asyncio.DatagramProtocol, remote_addr=addr
        )
        try:
            # asyncio's sendto drops empty payloads client-side, so use a raw
            # socket to exercise the relay's empty-datagram guard.
            import socket

            raw = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            raw.sendto(b"", addr)
            raw.close()
            transport.sendto(bytes([99]) + b"junk")  # unknown op
            transport.sendto(bytes([3]) + b"\x00\x01short")  # DATA, bad frame
            # A well-formed DATA frame for a group with no subscribers is
            # silently dropped, not an error.
            frame = encode(DataPdu(0, 1, 100, seq=0, group_id=0, index=0))
            transport.sendto(bytes([3]) + frame)
            deadline = loop.time() + 2.0
            while relay.malformed < 3 and loop.time() < deadline:
                await asyncio.sleep(0.01)
            assert relay.malformed == 3
            assert relay.forwarded == 0
        finally:
            transport.close()
            relay.close()

    asyncio.run(main())


def test_subscription_reannounce_heals_relay_restart_window():
    """SUBs sent before the relay heard them are healed by the re-announce."""

    async def main():
        relay = UdpRelay()
        addr = await relay.start()
        clock_holder = {}

        # An endpoint with a fast re-announce timer.
        from repro.transport.clock import AsyncioClock

        clock = AsyncioClock()
        clock_holder["clock"] = clock
        endpoint = UdpTransport(clock, addr, announce_interval=0.05)
        await endpoint.start()
        try:
            group = endpoint.create_group("g")
            got = []
            endpoint.subscribe(group.group_id, 7, got.append)
            # Simulate the relay having lost the subscription state.
            relay._subs.clear()
            deadline = clock.now + 2.0
            while not relay._subs and clock.now < deadline:
                await asyncio.sleep(0.01)
            assert relay._subs.get(group.group_id, {}).get(7) is not None
        finally:
            endpoint.close()
            relay.close()

    asyncio.run(main())
