"""Tests for drop-tail queueing and the network's trace emission."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.net.link import Link
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.scheduler import Simulator


def test_unbounded_queue_never_drops():
    link = Link(0, 1, bandwidth_bps=8e6, latency_s=0.0)
    for _ in range(1000):
        assert link.transmit(0.0, 1000) is not None
    assert link.queue_drops == 0


def test_drop_tail_overflows_at_limit():
    # 1 ms serialization per packet; limit 3 packets of backlog.
    link = Link(0, 1, bandwidth_bps=8e6, latency_s=0.0, queue_limit=3)
    results = [link.transmit(0.0, 1000) for _ in range(6)]
    delivered = [r for r in results if r is not None]
    assert len(delivered) == 3
    assert link.queue_drops == 3
    assert link.packets_dropped == 3


def test_queue_drains_over_time():
    link = Link(0, 1, bandwidth_bps=8e6, latency_s=0.0, queue_limit=2)
    assert link.transmit(0.0, 1000) is not None
    assert link.transmit(0.0, 1000) is not None
    assert link.transmit(0.0, 1000) is None  # full
    # 2 ms later the backlog has drained; room again.
    assert link.transmit(0.002, 1000) is not None


def test_invalid_queue_limit():
    with pytest.raises(TopologyError):
        Link(0, 1, 1e6, 0.0, queue_limit=0)


def test_congestion_loss_in_network():
    """A burst through a thin bottleneck loses its tail to the queue."""
    sim = Simulator(seed=1)
    net = Network(sim)
    for _ in range(3):
        net.add_node()
    net.add_link(0, 1, 100e6, 0.001)
    net.add_link(1, 2, 1e6, 0.001, queue_limit=4)  # 8 ms/packet bottleneck
    group = net.create_group("g")
    got = []
    net.subscribe(group.group_id, 2, got.append)
    for _ in range(20):
        net.multicast(0, Packet("DATA", 0, group.group_id, 1000))
    sim.run()
    assert 0 < len(got) < 20
    assert net.link(1, 2).queue_drops == 20 - len(got)


def test_tracer_emits_packet_events():
    sim = Simulator(seed=2)
    net = Network(sim)
    net.add_node(), net.add_node()
    net.add_link(0, 1, 10e6, 0.01)
    group = net.create_group("g")
    net.subscribe(group.group_id, 1, lambda p: None)
    records = []
    sim.tracer.subscribe(None, records.append)
    net.multicast(0, Packet("DATA", 0, group.group_id, 500))
    sim.run()
    categories = [r.category for r in records]
    assert categories == ["pkt.send", "pkt.recv"]
    assert records[0].node == 0 and records[1].node == 1


def test_tracer_emits_drops():
    sim = Simulator(seed=3)
    net = Network(sim)
    net.add_node(), net.add_node()
    net.add_link(0, 1, 10e6, 0.01, loss_rate=0.999999)
    group = net.create_group("g")
    net.subscribe(group.group_id, 1, lambda p: None)
    drops = []
    sim.tracer.subscribe("pkt.drop", drops.append)
    for _ in range(10):
        net.multicast(0, Packet("DATA", 0, group.group_id, 500))
    sim.run()
    assert len(drops) >= 9
