"""Tests for per-group state."""

from __future__ import annotations

import pytest

from repro.core.state import GroupState

ZONES = [10, 11, 12]  # smallest -> root


def make_state(k=16):
    return GroupState(group_id=0, k=k, zone_ids=ZONES)


def test_initial_highest_is_k_minus_one():
    s = make_state(16)
    assert s.highest_known == 15


def test_record_index_tracks_data_and_completion():
    s = make_state(4)
    for i in range(3):
        assert s.record_index(i)
        assert not s.complete
    s.record_index(7)  # a repair identity
    assert s.complete
    assert s.data_count == 3
    assert s.received() == 4


def test_duplicates_are_ignored():
    s = make_state(4)
    assert s.record_index(0)
    assert not s.record_index(0)
    assert s.received() == 1


def test_llc_counts_only_detected_losses():
    s = make_state(8)
    s.record_index(0)
    s.record_index(3)  # indices 1, 2 missing
    assert s.count_data_losses_before(3) == 2
    assert s.llc == 2
    # Re-counting the same gap adds nothing.
    assert s.count_data_losses_before(3) == 0
    assert s.llc == 2


def test_finalize_counts_tail_losses():
    s = make_state(8)
    s.record_index(0)
    s.record_index(1)
    assert s.finalize_data_losses() == 6
    assert s.llc == 6


def test_deficit_accounts_for_repairs():
    s = make_state(4)
    s.record_index(0)
    assert s.deficit() == 3
    s.record_index(9)   # repair identity closes part of the hole
    assert s.deficit() == 2


def test_zlc_monotone_per_zone():
    s = make_state()
    assert s.raise_zlc(10, 3)
    assert not s.raise_zlc(10, 2)
    assert s.zlc_for(10) == 3
    assert s.zlc_for(11) == 0
    assert s.raise_zlc(11, 5)
    assert s.max_zlc() == 5


def test_allocate_repair_indices_monotone():
    s = make_state(16)
    first = s.allocate_repair_index()
    second = s.allocate_repair_index()
    assert first == 16
    assert second == 17
    assert s.repairs_sent == 2


def test_note_highest_moves_allocation_forward():
    """NACK/FEC announcements keep repairers from reusing identities (§4)."""
    s = make_state(16)
    s.note_highest(20)
    assert s.allocate_repair_index() == 21
    s.note_highest(5)  # lower values never move it back
    assert s.allocate_repair_index() == 22


def test_zero_k_group_is_trivially_complete():
    s = GroupState(0, 0, ZONES)
    assert s.complete


def test_outstanding_and_fec_heard_start_zero():
    s = make_state()
    assert all(v == 0 for v in s.outstanding.values())
    assert all(v == 0 for v in s.fec_heard.values())
    assert set(s.outstanding) == set(ZONES)
