"""Campaign spec loading/validation and the interval statistics (no sims)."""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    ScenarioSpec,
    build_fault_plan,
    load_spec,
    spec_from_dict,
)
from repro.campaign.stats import (
    bootstrap_interval,
    series_intervals,
    shape_distance,
    t_critical,
    t_interval,
)
from repro.errors import CampaignError
from repro.faults.plan import GILBERT_ELLIOTT, PARTITION, SET_LOSS


def _base_dict(**overrides):
    data = {
        "name": "unit",
        "protocols": ["SRM", "SHARQFEC"],
        "seeds": [1, 2, 3],
        "packets": 32,
    }
    data.update(overrides)
    return data


# ------------------------------------------------------------------ the spec


def test_spec_round_trips_through_dict():
    spec = spec_from_dict(
        _base_dict(
            scenarios=[
                {"name": "baseline"},
                {
                    "name": "bursty",
                    "description": "GE on one edge link",
                    "faults": [
                        {
                            "kind": "gilbert_elliott",
                            "time": 0.0,
                            "a": 8,
                            "b": 11,
                            "p_gb": 0.02,
                            "p_bg": 0.2,
                        }
                    ],
                },
            ]
        )
    )
    rebuilt = spec_from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.digest() == spec.digest()
    # JSON-serializable end to end (the campaign index embeds it).
    assert spec_from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


def test_spec_digest_tracks_content():
    a = spec_from_dict(_base_dict())
    b = spec_from_dict(_base_dict(seeds=[1, 2, 4]))
    assert a.digest() != b.digest()


def test_grid_enumeration_order_and_size():
    spec = spec_from_dict(
        _base_dict(scenarios=[{"name": "s0"}, {"name": "s1"}])
    )
    cells = spec.cells()
    assert len(cells) == 2 * 2 * 3  # scenarios × protocols × seeds
    assert [c.scenario for c in cells[:6]] == ["s0"] * 6
    assert cells[0].protocol == "SRM" and cells[0].seed == 1
    assert len({(c.scenario, c.protocol, c.seed) for c in cells}) == len(cells)


@pytest.mark.parametrize(
    "mutation, match",
    [
        ({"name": "Bad Name!"}, "campaign name"),
        ({"protocols": []}, "at least one protocol"),
        ({"protocols": ["SRM", "SRM"]}, "duplicate protocols"),
        ({"protocols": ["SHARQFEC(xx)"]}, "bad protocol"),
        ({"seeds": []}, "at least one seed"),
        ({"seeds": [1, 1]}, "duplicate seeds"),
        ({"seeds": [1, "two"]}, "integers"),
        ({"packets": 0}, "packets"),
        ({"drain": -1.0}, "drain"),
        ({"warmup": -0.5}, "warmup"),
        ({"confidence": 1.5}, "confidence"),
        ({"ci_method": "magic"}, "ci_method"),
        ({"topology": "mesh9"}, "topology"),
        ({"bootstrap_samples": 5}, "bootstrap_samples"),
        ({"mystery_knob": 7}, "unknown spec keys"),
        ({"scenarios": [{"name": "a"}, {"name": "a"}]}, "duplicate scenario"),
        ({"scenarios": [{"name": "No Spaces"}]}, "scenario name"),
        ({"scenarios": [{"faults": []}]}, "with a 'name'"),
        ({"scenarios": [{"name": "a", "typo": 1}]}, "unknown keys"),
    ],
)
def test_validation_rejects_bad_specs(mutation, match):
    with pytest.raises(CampaignError, match=match):
        spec_from_dict(_base_dict(**mutation))


def test_missing_required_keys():
    with pytest.raises(CampaignError, match="missing required key 'protocols'"):
        spec_from_dict({"name": "x", "seeds": [1]})


def test_fault_plan_building_maps_kinds_and_sets():
    plan = build_fault_plan(
        "s",
        [
            {"kind": "set_loss", "time": 1.0, "a": 1, "b": 2, "rate": 0.5},
            {"kind": "partition", "time": 2.0, "nodes": [4, 5, 6]},
            {
                "kind": "gilbert_elliott",
                "time": 0.0,
                "a": 1,
                "b": 2,
                "p_gb": 0.1,
                "p_bg": 0.3,
            },
        ],
    )
    kinds = [a.kind for a in plan.actions()]
    assert kinds == [GILBERT_ELLIOTT, SET_LOSS, PARTITION]
    partition = plan.actions()[2]
    assert partition.param_dict()["nodes"] == (4, 5, 6)


@pytest.mark.parametrize(
    "step, match",
    [
        ({"kind": "meteor_strike", "time": 0.0}, "unknown kind"),
        ({"kind": "set_loss", "time": 0.0, "a": 1}, "bad arguments"),
        ({"kind": "set_loss", "time": 0.0, "a": 1, "b": 2, "rate": 2.0}, "outside"),
        ("not-a-table", "expected a table"),
    ],
)
def test_fault_plan_building_rejects_bad_steps(step, match):
    with pytest.raises(CampaignError, match=match):
        build_fault_plan("s", [step])


def test_scenario_fault_plan_none_when_empty():
    assert ScenarioSpec(name="clean").fault_plan() is None


def test_load_spec_json(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(json.dumps(_base_dict()))
    spec = load_spec(str(path))
    assert spec.name == "unit"
    bad = tmp_path / "c.yaml"
    bad.write_text("irrelevant")
    with pytest.raises(CampaignError, match=".toml or .json"):
        load_spec(str(bad))
    broken = tmp_path / "b.json"
    broken.write_text("{nope")
    with pytest.raises(CampaignError, match="bad JSON"):
        load_spec(str(broken))


def test_shipped_example_specs_validate():
    tomllib = pytest.importorskip("tomllib")  # noqa: F841 - gate on py3.11+
    fig14 = load_spec("examples/fig14_campaign.toml")
    assert fig14.name == "fig14"
    assert fig14.protocols == ("SRM", "SHARQFEC(ns,ni,so)")
    assert len(fig14.seeds) >= 3
    assert fig14.scenarios[0].name == "baseline"
    edge = load_spec("examples/highloss_edge_campaign.toml")
    assert edge.name == "highloss-edge"
    assert {s.name for s in edge.scenarios} == {
        "baseline",
        "wifi-burst",
        "wifi-degrading",
    }
    # Every declared fault schedule actually builds.
    for scenario in edge.scenarios:
        scenario.fault_plan()


# ------------------------------------------------------------- the statistics


def test_t_interval_matches_hand_computation():
    iv = t_interval([1.0, 2.0, 3.0], 0.95)
    assert iv.mean == pytest.approx(2.0)
    half = 4.303 * math.sqrt(1.0 / 3.0)  # t(df=2, 95%) * sd/sqrt(n), sd=1
    assert iv.hi - iv.mean == pytest.approx(half, rel=1e-6)
    assert iv.mean - iv.lo == pytest.approx(half, rel=1e-6)


def test_t_interval_degenerate_and_errors():
    iv = t_interval([5.0], 0.95)
    assert (iv.mean, iv.lo, iv.hi) == (5.0, 5.0, 5.0)
    with pytest.raises(CampaignError):
        t_interval([], 0.95)
    with pytest.raises(CampaignError, match="no t table"):
        t_critical(3, 0.42)
    assert t_critical(1000, 0.95) == pytest.approx(1.96)


def test_bootstrap_interval_is_deterministic_and_sane():
    values = [3.0, 4.0, 5.0, 6.0, 10.0]
    a = bootstrap_interval(values, 0.95, samples=500, rng=random.Random(7))
    b = bootstrap_interval(values, 0.95, samples=500, rng=random.Random(7))
    assert a == b
    assert a.lo <= a.mean <= a.hi
    assert min(values) <= a.lo and a.hi <= max(values)


def test_series_intervals_pads_short_series():
    intervals = series_intervals([[2.0, 2.0], [4.0]], 0.95)
    assert len(intervals) == 2
    assert intervals[0].mean == pytest.approx(3.0)
    assert intervals[1].mean == pytest.approx(1.0)  # short series padded with 0


def test_shape_distance_properties():
    assert shape_distance([1, 2, 3], [2, 4, 6]) == pytest.approx(0.0)
    assert shape_distance([1, 0, 0], [0, 0, 1]) == pytest.approx(1.0)
    assert shape_distance([], []) == 0.0
    assert 0.0 < shape_distance([3, 1, 0], [1, 3, 0]) < 1.0
