"""Property-based tests on the sharded engine's synchronization logic.

Three families of invariants back the engine's correctness argument
(docs/SCALING.md):

* **Lookahead safety** — a packet handed across a shard boundary during
  window *k* with latency >= the sync window always arrives after window
  *k* ends, so injecting it before window *k+1* never schedules into a
  shard's past.
* **Progress without messages** — the window schedule is a finite, pure
  function of ``(run_end, window)``; the lockstep loop terminates and
  advances every shard to ``run_end`` even when every exchange window is
  empty (no deadlock).
* **Per-shard RNG determinism** — shard loss streams are derived from
  ``(seed, stream name)`` alone, so replays match and distinct shards
  draw independently.

Times are drawn as dyadic rationals (n/64) so every sum and multiple is
exact in binary floating point: the properties test the protocol, not
rounding noise.
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.engine import containing_window, message_sort_key, window_ends
from repro.engine.partition import plan_shards
from repro.engine.sync import CrossShardMessage
from repro.net.network import Network
from repro.scoping.zone import ZoneHierarchy
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Simulator

# Dyadic rationals: exactly representable, so k*window and t+latency are
# computed without rounding for the ranges used here.
dyadic = st.integers(min_value=1, max_value=4096).map(lambda n: n / 64.0)


@settings(max_examples=100, deadline=None)
@given(run_end=dyadic, window=st.one_of(dyadic, st.just(math.inf)))
def test_window_schedule_invariants(run_end, window):
    ends = window_ends(run_end, window)
    # Finite, strictly increasing, lands exactly on run_end.
    assert ends[-1] == run_end
    assert all(a < b for a, b in zip(ends, ends[1:]))
    # No window is wider than the sync window (the lookahead bound).
    starts = [0.0] + ends[:-1]
    assert all(end - start <= window for start, end in zip(starts, ends))
    # The schedule is a pure function of its arguments (replay-stable).
    assert window_ends(run_end, window) == ends


@settings(max_examples=200, deadline=None)
@given(
    run_end=dyadic,
    window=dyadic,
    send_numerator=st.integers(min_value=0, max_value=4096 * 64),
    extra_latency=st.integers(min_value=0, max_value=256),
)
def test_lookahead_safety(run_end, window, send_numerator, extra_latency):
    """send during window k + latency >= window  =>  arrival after end k.

    This is the conservative-sync soundness argument: when the engine
    injects window k's boundary messages at the start of window k+1
    (clock == ends[k]), ``call_at(arrival, ...)`` is never in the past.
    """
    ends = window_ends(run_end, window)
    send = (send_numerator / 64.0) % run_end
    latency = window + extra_latency / 64.0  # latency >= lookahead == window
    k = containing_window(ends, send)
    arrival = send + latency
    assert arrival >= ends[k]
    # Strict when the send is strictly inside the window.
    if send > ([0.0] + ends)[k]:
        assert arrival > ends[k]


@settings(max_examples=50, deadline=None)
@given(run_end=dyadic, window=st.one_of(dyadic, st.just(math.inf)))
def test_lockstep_loop_terminates_on_empty_windows(run_end, window):
    """The reference engine's loop shape deadlocks never: every shard is
    driven to run_end in finitely many barriers even with zero traffic."""

    class IdleShard:
        def __init__(self):
            self.now = 0.0

        def inject(self, messages):
            assert messages == []

        def run_until(self, end):
            assert end > self.now
            self.now = end

        def drain_outbox(self):
            return []

    shards = [IdleShard() for _ in range(3)]
    pending = [[] for _ in shards]
    for end in window_ends(run_end, window):
        routed = [[] for _ in shards]
        for i, shard in enumerate(shards):
            shard.inject(pending[i])
            shard.run_until(end)
            routed[i].extend(shard.drain_outbox())
        pending = routed
    assert all(shard.now == run_end for shard in shards)


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    shard_index=st.integers(min_value=0, max_value=63),
    n_draws=st.integers(min_value=1, max_value=32),
)
def test_per_shard_loss_streams_are_deterministic(seed, shard_index, n_draws):
    """Same (seed, stream) replays exactly; sibling shards differ.

    This is what makes loss draws independent of worker packing: every
    shard owns the stream ``net.loss.s<index>`` keyed only by the master
    seed and its own logical index.
    """
    name = f"net.loss.s{shard_index}"
    first = [RngRegistry(seed).stream(name).random() for _ in range(1)]
    a = RngRegistry(seed).stream(name)
    b = RngRegistry(seed).stream(name)
    draws_a = [a.random() for _ in range(n_draws)]
    draws_b = [b.random() for _ in range(n_draws)]
    assert draws_a == draws_b
    assert draws_a[0] == first[0]
    sibling = RngRegistry(seed).stream(f"net.loss.s{shard_index + 1}")
    assert [sibling.random() for _ in range(n_draws)] != draws_a


@settings(max_examples=40, deadline=None)
@given(
    zone_sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4),
    latencies=st.data(),
)
def test_plan_shards_invariants(zone_sizes, latencies):
    """Ownership is total and disjoint; boundary = exactly the cross links;
    lookahead = the minimum boundary latency."""
    sim = Simulator()
    net = Network(sim)
    hierarchy = ZoneHierarchy()
    source = net.add_node("source").node_id
    zones = []
    boundary_latencies = []
    for size in zone_sizes:
        latency = latencies.draw(dyadic)
        boundary_latencies.append(latency)
        head = net.add_node().node_id
        net.add_link(source, head, 1e6, latency, 0.0)
        members = {head}
        for _ in range(size - 1):
            child = net.add_node().node_id
            net.add_link(head, child, 1e6, latency, 0.0)
            members.add(child)
        zones.append(members)
    root = hierarchy.add_root(set(net.nodes), name="root")
    for i, members in enumerate(zones):
        hierarchy.add_zone(root.zone_id, members, name=f"Z{i}")

    plan = plan_shards(hierarchy, net.adjacency())

    # Residue shard (the source) first, then one shard per zone, in order.
    assert plan.shards[0].key == "residue"
    assert plan.shards[0].nodes == frozenset({source})
    assert plan.n_shards == len(zones) + 1
    owned = [shard.nodes for shard in plan.shards]
    assert frozenset().union(*owned) == frozenset(net.nodes)
    assert sum(len(nodes) for nodes in owned) == len(net.nodes)
    for shard, members in zip(plan.shards[1:], zones):
        assert shard.nodes == frozenset(members)
    # Boundary links are exactly the source<->head links, both directions.
    crossing = {
        (link.src, link.dst)
        for link in plan.boundary
    }
    expected = set()
    for members in zones:
        head = min(members)
        expected.add((source, head))
        expected.add((head, source))
    assert crossing == expected
    assert plan.lookahead == min(boundary_latencies)
    for link in plan.boundary:
        assert plan.shard_of(link.src).index == link.src_shard
        assert plan.shard_of(link.dst).index == link.dst_shard
        assert link.src_shard != link.dst_shard


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(dyadic, st.integers(0, 7), st.integers(0, 1000)),
        min_size=0,
        max_size=40,
    )
)
def test_injection_order_is_canonical(raw):
    """The inbox sort key is a total order independent of arrival order."""
    messages = [
        CrossShardMessage(
            arrival=t, origin_shard=shard, origin_seq=seq, node=0, dst_shard=0, packet=None
        )
        for t, shard, seq in raw
    ]
    assume(len({message_sort_key(m) for m in messages}) == len(messages))
    forward = sorted(messages, key=message_sort_key)
    backward = sorted(reversed(messages), key=message_sort_key)
    assert forward == backward
    assert [m.arrival for m in forward] == sorted(m.arrival for m in forward)
