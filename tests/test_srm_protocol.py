"""Integration tests for the SRM baseline."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.net.monitor import TrafficMonitor
from repro.net.network import Network
from repro.sim.scheduler import Simulator
from repro.srm.config import SrmConfig
from repro.srm.protocol import SrmProtocol
from repro.testing import assert_eventual_delivery
from repro.topology.builders import build_star
from repro.topology.figure10 import build_figure10


def run_srm(net, source, receivers, n_packets=32, until=30.0, **cfg):
    config = SrmConfig(n_packets=n_packets, **cfg)
    proto = SrmProtocol(net, config, source, receivers)
    proto.start(session_start=1.0, data_start=6.0)
    net.sim.run(until=until)
    return proto


def test_lossless_delivery_needs_no_repairs():
    sim = Simulator(seed=1)
    net = build_star(sim, n_leaves=4)
    proto = run_srm(net, 0, [1, 2, 3, 4])
    assert proto.all_complete()
    assert proto.total_nacks_sent() == 0
    assert proto.total_repairs_sent() == 0


def test_reliable_delivery_under_loss():
    sim = Simulator(seed=2)
    net = build_star(sim, n_leaves=4, loss_rate=0.15)
    proto = run_srm(net, 0, [1, 2, 3, 4], until=60.0)
    assert_eventual_delivery(proto)
    assert proto.total_repairs_sent() > 0


def test_figure10_full_recovery():
    sim = Simulator(seed=3)
    topo = build_figure10(sim)
    config = SrmConfig(n_packets=64)
    proto = SrmProtocol(topo.network, config, topo.source, topo.receivers)
    proto.start()
    sim.run(until=40.0)
    assert_eventual_delivery(proto, context="figure10")


def test_receivers_repair_each_other():
    """A nearby peer wins the repair race against a distant source.

    Topology: source 0 --(100 ms)-- hub 1 --(5 ms)-- leaves 2, 3.  Only
    leaf 3's access link loses packets, so leaf 2 holds everything and its
    reply window [d, 2d] toward 3 beats the source's by an order of
    magnitude — SRM's receiver-driven repair in action.
    """
    sim = Simulator(seed=4)
    net = Network(sim)
    for _ in range(4):
        net.add_node()
    net.add_link(0, 1, 10e6, 0.100)
    net.add_link(1, 2, 10e6, 0.005)
    net.add_link(1, 3, 10e6, 0.005, loss_rate=0.4)
    proto = run_srm(net, 0, [1, 2, 3], until=60.0)
    assert proto.all_complete()
    peer_repairs = sum(r.repairs_sent for r in proto.receivers.values())
    assert peer_repairs > 0
    assert peer_repairs > proto.source.repairs_sent


def test_tail_loss_detected_via_session():
    """Losing the last packets leaves no gap; session highest-seq finds it."""
    sim = Simulator(seed=5)
    net = build_star(sim, n_leaves=2, loss_rate=0.3)
    proto = run_srm(net, 0, [1, 2], n_packets=8, until=90.0)
    assert proto.all_complete()


def test_completion_fraction_monotone():
    sim = Simulator(seed=6)
    topo = build_figure10(sim)
    config = SrmConfig(n_packets=32)
    proto = SrmProtocol(topo.network, config, topo.source, topo.receivers)
    proto.start()
    fractions = []
    for t in (7.0, 9.0, 12.0, 20.0):
        sim.run(until=t)
        fractions.append(proto.completion_fraction())
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0


def test_requires_receivers():
    sim = Simulator(seed=7)
    net = build_star(sim, n_leaves=1)
    with pytest.raises(ConfigError):
        SrmProtocol(net, SrmConfig(), 0, [])


def test_data_before_session_rejected():
    sim = Simulator(seed=8)
    net = build_star(sim, n_leaves=2)
    proto = SrmProtocol(net, SrmConfig(), 0, [1, 2])
    with pytest.raises(ConfigError):
        proto.start(session_start=5.0, data_start=1.0)


def test_repair_suppression_limits_duplicates():
    """Many receivers share a loss; suppression keeps repairs ≪ receivers."""
    sim = Simulator(seed=9)
    net = build_star(sim, n_leaves=8)
    net.set_link_loss(0, 8, 0.5)
    proto = run_srm(net, 0, list(range(1, 9)), n_packets=64, until=60.0)
    assert proto.all_complete()
    repairs = proto.total_repairs_sent()
    losses = 64 - proto.receivers[8].data_received
    # Roughly one repair per loss event, not one per (loss, repairer) pair.
    assert repairs < 3 * max(losses, 1)


def test_srm_rtt_estimation_converges():
    sim = Simulator(seed=10)
    net = build_star(sim, n_leaves=3)
    proto = run_srm(net, 0, [1, 2, 3], until=20.0)
    agent = proto.receivers[1]
    true_rtt = net.true_rtt(1, 0)
    assert agent.rtt.get(0) == pytest.approx(true_rtt, rel=0.05)
