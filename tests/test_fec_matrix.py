"""Tests for GF(256) matrices."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.fec.gf256 import GF256
from repro.fec.matrix import GFMatrix


def test_identity_inverse_is_identity():
    eye = GFMatrix.identity(5)
    assert eye.inverse() == eye


def test_inverse_roundtrip_small():
    m = GFMatrix([[1, 2, 3], [4, 5, 6], [7, 8, 10]])
    inv = m.inverse()
    assert m.matmul(inv) == GFMatrix.identity(3)
    assert inv.matmul(m) == GFMatrix.identity(3)


def test_singular_matrix_raises():
    m = GFMatrix([[1, 2], [1, 2]])  # identical rows
    with pytest.raises(CodecError):
        m.inverse()


def test_zero_matrix_singular():
    with pytest.raises(CodecError):
        GFMatrix([[0, 0], [0, 0]]).inverse()


def test_non_square_inverse_rejected():
    with pytest.raises(CodecError):
        GFMatrix([[1, 2, 3], [4, 5, 6]]).inverse()


def test_ragged_rows_rejected():
    with pytest.raises(CodecError):
        GFMatrix([[1, 2], [3]])


def test_empty_matrix_rejected():
    with pytest.raises(CodecError):
        GFMatrix([])
    with pytest.raises(CodecError):
        GFMatrix([[]])


def test_vandermonde_shape_and_values():
    v = GFMatrix.vandermonde(3, 4)
    assert v.nrows == 3 and v.ncols == 4
    for i in range(3):
        for j in range(4):
            assert v.data[i][j] == GF256.pow(i + 1, j)


def test_cauchy_every_square_submatrix_invertible():
    k = 4
    xs = [k + r for r in range(4)]
    ys = list(range(k))
    c = GFMatrix.cauchy(xs, ys)
    # All 2x2 minors of a Cauchy matrix are invertible.
    for r1 in range(4):
        for r2 in range(r1 + 1, 4):
            for c1 in range(k):
                for c2 in range(c1 + 1, k):
                    sub = GFMatrix(
                        [
                            [c.data[r1][c1], c.data[r1][c2]],
                            [c.data[r2][c1], c.data[r2][c2]],
                        ]
                    )
                    sub.inverse()  # must not raise


def test_cauchy_duplicate_points_rejected():
    with pytest.raises(CodecError):
        GFMatrix.cauchy([1, 2], [2, 3])


def test_mul_vector_rows():
    m = GFMatrix([[1, 0], [0, 1], [1, 1]])
    v0, v1 = b"\x01\x02", b"\x10\x20"
    out = m.mul_vector_rows([v0, v1])
    assert bytes(out[0]) == v0
    assert bytes(out[1]) == v1
    assert bytes(out[2]) == bytes(a ^ b for a, b in zip(v0, v1))


def test_mul_vector_rows_validates_inputs():
    m = GFMatrix.identity(2)
    with pytest.raises(CodecError):
        m.mul_vector_rows([b"\x00"])
    with pytest.raises(CodecError):
        m.mul_vector_rows([b"\x00", b"\x00\x01"])


def test_matmul_dimension_mismatch():
    with pytest.raises(CodecError):
        GFMatrix.identity(2).matmul(GFMatrix.identity(3))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.randoms(use_true_random=False))
def test_random_invertible_matrices_roundtrip(n, rnd):
    """Generate random matrices; whenever one inverts, M·M⁻¹ must be I."""
    rows = [[rnd.randrange(256) for _ in range(n)] for _ in range(n)]
    m = GFMatrix(rows)
    try:
        inv = m.inverse()
    except CodecError:
        return  # singular draw; nothing to check
    assert m.matmul(inv) == GFMatrix.identity(n)


def test_copy_is_deep():
    m = GFMatrix([[1, 2], [3, 4]])
    c = m.copy()
    c.data[0][0] = 9
    assert m.data[0][0] == 1
