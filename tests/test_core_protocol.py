"""Integration tests for the SHARQFEC protocol end to end."""

from __future__ import annotations

import pytest

from repro.core.config import SharqfecConfig
from repro.core.protocol import SharqfecProtocol
from repro.errors import ConfigError
from repro.net.monitor import TrafficMonitor
from repro.net.network import Network
from repro.scoping.zone import ZoneHierarchy
from repro.sim.scheduler import Simulator
from repro.testing import assert_eventual_delivery, assert_no_duplicate_delivery
from repro.topology.builders import build_star
from repro.topology.figure10 import build_figure10


def run_sharqfec(topo_or_net, config, source, receivers, hierarchy=None, until=40.0):
    net = getattr(topo_or_net, "network", topo_or_net)
    proto = SharqfecProtocol(net, config, source, receivers, hierarchy)
    proto.start(session_start=1.0, data_start=6.0)
    net.sim.run(until=until)
    return proto


def test_lossless_delivery_no_nacks():
    sim = Simulator(seed=1)
    net = build_star(sim, n_leaves=4)
    cfg = SharqfecConfig(n_packets=32, injection=False)
    proto = run_sharqfec(net, cfg, 0, [1, 2, 3, 4])
    assert_eventual_delivery(proto)
    assert_no_duplicate_delivery(proto)
    assert proto.total_nacks_sent() == 0


def test_reliable_delivery_under_loss_flat():
    sim = Simulator(seed=2)
    net = build_star(sim, n_leaves=4, loss_rate=0.15)
    cfg = SharqfecConfig(n_packets=64, scoping=False)
    proto = run_sharqfec(net, cfg, 0, [1, 2, 3, 4], until=60.0)
    assert_eventual_delivery(proto)
    assert_no_duplicate_delivery(proto)


@pytest.mark.parametrize("variant", ["SHARQFEC", "ns", "ni", "ns,ni", "ns,ni,so"])
def test_figure10_full_recovery_all_variants(variant):
    sim = Simulator(seed=3)
    topo = build_figure10(sim)
    flags = set(variant.split(",")) if variant != "SHARQFEC" else set()
    cfg = SharqfecConfig(
        n_packets=48,
        scoping="ns" not in flags,
        injection="ni" not in flags,
        sender_only="so" in flags,
    )
    proto = run_sharqfec(
        topo, cfg, topo.source, topo.receivers, topo.hierarchy, until=45.0
    )
    assert_eventual_delivery(proto, context=variant)


def test_repairs_localized_by_scoping():
    """Scoping confines the repairs for *in-zone* loss to that zone.

    Figure 10's trees share identical in-tree loss rates, so we heat one
    tree's internal links (20%/10% instead of 8%/4%).  Under scoping its
    extra repairs are zone-local: its leaves see far more FEC than a
    cool tree's.  Without scoping every receiver eats the same global
    repair stream (the cool tree actually sees slightly more of it, losing
    less of it to its own links).
    """

    def fec_ratio(scoping, seed=4):
        sim = Simulator(seed=seed)
        topo = build_figure10(sim)
        hot = topo.heads[1]   # cleanest backbone: in-tree loss dominates
        cool = topo.heads[2]
        for child in topo.children[hot]:
            topo.network.set_link_loss(hot, child, 0.20)
            for gc in topo.grandchildren[child]:
                topo.network.set_link_loss(child, gc, 0.10)
        monitor = TrafficMonitor()
        topo.network.add_observer(monitor)
        cfg = SharqfecConfig(n_packets=64, scoping=scoping)
        proto = run_sharqfec(
            topo, cfg, topo.source, topo.receivers,
            topo.hierarchy if scoping else None, until=50.0,
        )
        assert proto.all_complete()
        hot_leafs = [
            gc for child in topo.children[hot] for gc in topo.grandchildren[child]
        ]
        cool_leafs = [
            gc for child in topo.children[cool] for gc in topo.grandchildren[child]
        ]
        hot_fec = sum(monitor.total(["FEC"], node=n) for n in hot_leafs) / len(hot_leafs)
        cool_fec = sum(monitor.total(["FEC"], node=n) for n in cool_leafs) / len(cool_leafs)
        return hot_fec / max(cool_fec, 1e-9)

    scoped = fec_ratio(True)
    nonscoped = fec_ratio(False)
    assert scoped > 1.25, f"hot tree should see more repairs (got {scoped:.2f}x)"
    assert scoped > nonscoped + 0.3, (
        f"scoping should skew repairs toward loss: {scoped:.2f}x vs {nonscoped:.2f}x"
    )


def test_nonscoped_variant_floods_everyone():
    sim = Simulator(seed=4)
    topo = build_figure10(sim)
    monitor = TrafficMonitor()
    topo.network.add_observer(monitor)
    cfg = SharqfecConfig(n_packets=64, scoping=False)
    proto = run_sharqfec(topo, cfg, topo.source, topo.receivers, None)
    assert proto.all_complete()
    a = monitor.total(["FEC"], node=topo.leaf_receivers[0])
    b = monitor.total(["FEC"], node=topo.leaf_receivers[-1])
    # Same (global) repair stream modulo each receiver's own link loss.
    assert a > 0 and b > 0
    assert abs(a - b) < 0.5 * max(a, b)


def test_sender_only_variant_has_no_peer_repairs():
    sim = Simulator(seed=5)
    topo = build_figure10(sim)
    cfg = SharqfecConfig(n_packets=48, scoping=False, injection=False, sender_only=True)
    proto = run_sharqfec(topo, cfg, topo.source, topo.receivers, None, until=45.0)
    assert proto.all_complete()
    for receiver in proto.receivers.values():
        assert all(s.repairs_sent == 0 for s in receiver.groups.values()), (
            "receivers must not repair under sender-only"
        )


def test_injection_reduces_nacks_under_scoping():
    """Preemptive FEC answers losses before requests are voiced (§4).

    The EWMA predictors need a few dozen groups of loss history before
    their injections anticipate demand, so a short stream shows no effect;
    at 512 packets (32 groups) the reduction is unambiguous (at the paper's
    1024 it is ~30%).
    """

    def nacks(injection, seed=6, n_packets=512):
        sim = Simulator(seed=seed)
        topo = build_figure10(sim)
        cfg = SharqfecConfig(n_packets=n_packets, injection=injection)
        proto = SharqfecProtocol(
            topo.network, cfg, topo.source, topo.receivers, topo.hierarchy
        )
        proto.start(1.0, 6.0)
        sim.run(until=6.0 + n_packets * cfg.inter_packet_interval + 15.0)
        assert proto.all_complete()
        return proto.total_nacks_sent()

    assert nacks(True) < nacks(False)


def test_group_payload_math_matches_simulation():
    """The identity-counting shortcut equals real FEC decodability."""
    from repro.fec.codec import ErasureCodec

    sim = Simulator(seed=9)
    net = build_star(sim, n_leaves=2, loss_rate=0.2)
    cfg = SharqfecConfig(n_packets=32, scoping=False)
    proto = run_sharqfec(net, cfg, 0, [1, 2], until=60.0)
    assert proto.all_complete()
    codec = ErasureCodec(cfg.group_size)
    for receiver in proto.receivers.values():
        for state in receiver.groups.values():
            assert codec.can_decode(sorted(state.indices)) == state.complete


def test_completion_fraction_and_stats():
    sim = Simulator(seed=10)
    topo = build_figure10(sim)
    cfg = SharqfecConfig(n_packets=32)
    proto = SharqfecProtocol(
        topo.network, cfg, topo.source, topo.receivers, topo.hierarchy
    )
    proto.start()
    assert proto.completion_fraction() == 0.0
    sim.run(until=40.0)
    assert proto.completion_fraction() == 1.0
    assert proto.incomplete_receivers() == []
    assert proto.variant_name() == "SHARQFEC"
    assert proto.data_end_time(6.0) == pytest.approx(6.0 + 32 * 0.01)


def test_source_must_be_covered_by_hierarchy():
    sim = Simulator(seed=11)
    net = build_star(sim, n_leaves=3)
    h = ZoneHierarchy()
    h.add_root({1, 2, 3})  # source 0 missing
    with pytest.raises(ConfigError):
        SharqfecProtocol(net, SharqfecConfig(), 0, [1, 2, 3], h)


def test_session_needs_receivers():
    sim = Simulator(seed=12)
    net = build_star(sim, n_leaves=1)
    with pytest.raises(ConfigError):
        SharqfecProtocol(net, SharqfecConfig(), 0, [])


def test_deterministic_given_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        topo = build_figure10(sim)
        cfg = SharqfecConfig(n_packets=32)
        proto = run_sharqfec(
            topo, cfg, topo.source, topo.receivers, topo.hierarchy, until=20.0
        )
        return proto.total_nacks_sent(), proto.completion_fraction()

    assert run(13) == run(13)
