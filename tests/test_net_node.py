"""Unit tests for the Node delivery plumbing."""

from __future__ import annotations

import pytest

from repro.net.node import Node
from repro.net.packet import Packet, UnicastPacket


def test_handlers_per_group():
    node = Node(1)
    got_a, got_b = [], []
    node.add_handler(10, got_a.append)
    node.add_handler(20, got_b.append)
    node.deliver(Packet("DATA", 0, 10, 100))
    assert len(got_a) == 1 and got_b == []
    assert sorted(node.groups()) == [10, 20]


def test_multiple_handlers_same_group():
    node = Node(1)
    got_a, got_b = [], []
    node.add_handler(10, got_a.append)
    node.add_handler(10, got_b.append)
    node.deliver(Packet("DATA", 0, 10, 100))
    assert len(got_a) == 1 and len(got_b) == 1


def test_remove_handler():
    node = Node(1)
    handler = lambda p: None
    node.add_handler(10, handler)
    node.remove_handler(10, handler)
    assert node.groups() == []
    with pytest.raises(ValueError):
        node.remove_handler(10, handler)


def test_handler_may_unsubscribe_during_delivery():
    node = Node(1)
    got = []

    def once(packet):
        got.append(packet)
        node.remove_handler(10, once)

    node.add_handler(10, once)
    node.deliver(Packet("DATA", 0, 10, 100))
    node.deliver(Packet("DATA", 0, 10, 100))
    assert len(got) == 1


def test_unicast_handler():
    node = Node(1)
    got = []
    node.set_unicast_handler(got.append)
    node.deliver_unicast(UnicastPacket("PING", 0, 1, 64))
    assert len(got) == 1
    node.set_unicast_handler(None)
    node.deliver_unicast(UnicastPacket("PING", 0, 1, 64))
    assert len(got) == 1


def test_default_name():
    assert Node(7).name == "n7"
    assert Node(7, "router").name == "router"
