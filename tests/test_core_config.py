"""Tests for SHARQFEC configuration and variant naming."""

from __future__ import annotations

import pytest

from repro.core.config import SharqfecConfig
from repro.errors import ConfigError


def test_paper_defaults():
    cfg = SharqfecConfig()
    assert cfg.group_size == 16
    assert cfg.packet_size == 1000
    assert cfg.data_rate_bps == 800e3
    assert cfg.n_packets == 1024
    assert (cfg.c1, cfg.c2, cfg.d1, cfg.d2) == (2.0, 2.0, 1.0, 1.0)
    assert cfg.ewma_keep == 0.75


def test_inter_packet_interval():
    cfg = SharqfecConfig()
    # 1000 bytes at 800 kbit/s = 10 ms -> 100 packets/s (§6.2).
    assert cfg.inter_packet_interval == pytest.approx(0.010)


def test_n_groups_and_tail_group():
    cfg = SharqfecConfig(n_packets=100, group_size=16)
    assert cfg.n_groups == 7
    assert cfg.group_k(0) == 16
    assert cfg.group_k(6) == 4  # 100 - 6*16
    with pytest.raises(ConfigError):
        cfg.group_k(7)
    with pytest.raises(ConfigError):
        cfg.group_k(-1)


def test_exact_multiple_has_full_tail():
    cfg = SharqfecConfig(n_packets=64, group_size=16)
    assert cfg.n_groups == 4
    assert cfg.group_k(3) == 16


def test_repair_spacing_is_half_ipt():
    cfg = SharqfecConfig()
    assert cfg.repair_spacing == pytest.approx(0.005)


def test_variant_flags_and_names():
    cfg = SharqfecConfig()
    assert cfg.variant_name() == "SHARQFEC"
    ns = cfg.variant(scoping=False)
    assert ns.variant_name() == "SHARQFEC(ns)"
    nsni = cfg.variant(scoping=False, injection=False)
    assert nsni.variant_name() == "SHARQFEC(ns,ni)"
    ecsrm = cfg.ecsrm()
    assert ecsrm.variant_name() == "SHARQFEC(ns,ni,so)"
    assert not ecsrm.scoping and not ecsrm.injection and ecsrm.sender_only
    # The original is untouched.
    assert cfg.scoping and cfg.injection and not cfg.sender_only


@pytest.mark.parametrize(
    "kwargs",
    [
        {"group_size": 0},
        {"packet_size": 0},
        {"data_rate_bps": 0},
        {"n_packets": 0},
        {"ewma_keep": 1.0},
        {"ewma_keep": -0.1},
        {"c1": -1},
        {"escalation_attempts": 0},
        {"session_interval": (0.0, 1.0)},
        {"session_interval": (2.0, 1.0)},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ConfigError):
        SharqfecConfig(**kwargs)
