"""Edge-case tests pinning the :class:`repro.sim.Engine` contract.

The sharded engine drives simulators only through the Engine protocol
(:mod:`repro.sim.engine`), so the behaviors its windowed loop leans on —
seed-stable replay after ``reset``, ``run(until=...)`` leaving the clock
exactly at the horizon, rejection of past-time scheduling, and the
pending/fired/cancelled life-cycle rules of ``reschedule``/``rearm`` —
are contract, not implementation detail.  These tests keep
:class:`~repro.sim.scheduler.Simulator` honest about each clause.
"""

from __future__ import annotations

import pytest

from repro.sim import Engine
from repro.sim.scheduler import SimulationError, Simulator


def test_simulator_satisfies_engine_protocol():
    assert isinstance(Simulator(), Engine)


def test_reset_with_seed_replays_identically():
    """reset(seed) must restore clock, counters, tie-break order and RNG
    streams — a shard replayed from the same spec is byte-identical."""

    def exercise(sim):
        log = []
        # Two events at the same instant: order is the scheduling order
        # (tie-break counter), which reset must rewind too.
        sim.schedule(1.0, lambda: log.append(("a", sim.now)))
        sim.schedule(1.0, lambda: log.append(("b", sim.now)))
        sim.schedule(2.0, lambda: log.append(("rng", sim.rng.stream("net.loss.s1").random())))
        sim.run()
        return log, sim.now, sim.events_fired

    sim = Simulator(seed=42)
    first = exercise(sim)
    sim.reset(seed=42)
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_fired == 0
    second = exercise(sim)
    assert first == second


def test_reset_without_seed_keeps_rng_state():
    sim = Simulator(seed=7)
    registry = sim.rng
    before = sim.rng.stream("x").random()
    sim.reset()
    # Seedless reset keeps the registry (streams continue, not replay)...
    assert sim.rng is registry
    # ...while reseeding rebuilds it, replaying draws from the start.
    sim.reset(seed=7)
    assert sim.rng is not registry
    assert sim.rng.stream("x").random() == before


def test_reschedule_fired_event_raises():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.reschedule(event, 1.0)


def test_reschedule_cancelled_event_raises():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.cancel(event)
    with pytest.raises(ValueError):
        sim.reschedule(event, 1.0)


def test_reschedule_pending_event_moves_it():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.reschedule(event, 5.0)
    sim.run()
    assert fired == [5.0]
    assert sim.events_fired == 1


def test_rearm_unfired_event_raises():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.rearm(event, 1.0)


def test_rearm_cancelled_event_raises():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.cancel(event)
    sim.run()
    with pytest.raises(ValueError):
        sim.rearm(event, 1.0)


def test_rearm_fired_event_fires_again():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run()
    sim.rearm(event, 2.0)
    sim.run()
    assert fired == [1.0, 3.0]


def test_stop_only_interrupts_the_running_run():
    sim = Simulator()
    fired = []
    # stop() before run() must not pre-empt the next run.
    sim.stop()
    sim.schedule(1.0, lambda: fired.append("first"))
    sim.run()
    assert fired == ["first"]


def test_step_after_stop_still_fires():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a"]  # stopped mid-run
    assert sim.step() is True  # stop() does not poison single-stepping
    assert fired == ["a", "b"]
    assert sim.step() is False  # empty queue


def test_run_resumes_after_stop():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, lambda: fired.append("b"))
    assert sim.run() == 1.0
    assert sim.run() == 2.0
    assert fired == ["a", "b"]


def test_run_until_advances_clock_to_horizon():
    """run(until=t) leaves now == t even with no events — the windowed
    lockstep depends on every shard's clock landing exactly on each
    barrier so injected arrivals are never 'in the past'."""
    sim = Simulator()
    assert sim.run(until=3.5) == 3.5
    assert sim.now == 3.5
    sim.schedule(10.0, lambda: None)
    assert sim.run(until=7.25) == 7.25
    assert sim.pending == 1


def test_past_time_scheduling_is_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.at(4.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_at(4.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)
    event = sim.at(6.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.reschedule_at(event, 4.0)
    with pytest.raises(SimulationError):
        sim.reschedule(event, -1.0)


def test_scheduling_at_now_is_allowed():
    """Boundary injection at exactly the barrier time must be legal."""
    sim = Simulator()
    sim.run(until=5.0)
    fired = []
    sim.call_at(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]


def test_max_events_safety_valve():
    sim = Simulator()

    def rearm_forever():
        sim.schedule(0.1, rearm_forever)

    sim.schedule(0.1, rearm_forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)
    assert sim.events_fired == 100
