"""Tests for session peer aging and session-message size accounting."""

from __future__ import annotations

import pytest

from repro.core.config import SharqfecConfig
from repro.core.pdus import SessionPdu
from repro.core.protocol import SharqfecProtocol
from repro.core.rtt import RttTable
from repro.net.network import Network
from repro.sim.scheduler import Simulator
from repro.topology.builders import build_star


def test_prune_stale_drops_old_peers():
    table = RttTable(node_id=1)
    table.record_heard(0, 2, 1.0, 1.0)
    table.record_heard(0, 3, 9.0, 9.0)
    dropped = table.prune_stale(now=10.0, timeout=6.0)
    assert dropped == [2]
    assert set(table.heard_in_zone(0)) == {3}


def test_prune_keeps_direct_estimates():
    table = RttTable(node_id=1)
    table.observe(2, 0.1)
    table.record_heard(0, 2, 1.0, 1.0)
    table.prune_stale(now=100.0, timeout=6.0)
    # Echo state gone, the RTT estimate itself survives.
    assert table.get(2) == pytest.approx(0.1)
    assert table.heard_in_zone(0) == {}


def run_star_session(seed=1):
    sim = Simulator(seed=seed)
    net = build_star(sim, n_leaves=3)
    cfg = SharqfecConfig(n_packets=16)
    proto = SharqfecProtocol(net, cfg, 0, [1, 2, 3])
    sim.at(1.0, proto._start_sessions)
    return sim, net, proto


def test_departed_peer_ages_out_of_session_messages():
    sim, net, proto = run_star_session()
    sizes = {}
    original = net.multicast

    def spy(src, pkt):
        if isinstance(pkt, SessionPdu) and src == 1:
            sizes[round(sim.now, 3)] = {e.peer_id for e in pkt.entries}
        return original(src, pkt)

    net.multicast = spy
    sim.run(until=8.0)
    # While everyone is alive node 1 echoes the other members.
    alive_views = list(sizes.values())[-1]
    assert 2 in alive_views and 3 in alive_views
    # Node 3 leaves; after the peer timeout node 1 stops echoing it.
    proto.receivers[3].stop()
    sizes.clear()
    sim.run(until=20.0)
    final_view = list(sizes.values())[-1]
    assert 3 not in final_view
    assert 2 in final_view


def test_session_message_size_tracks_entries():
    sim, net, proto = run_star_session(seed=2)
    observed = []
    original = net.multicast

    def spy(src, pkt):
        if isinstance(pkt, SessionPdu):
            observed.append(pkt)
        return original(src, pkt)

    net.multicast = spy
    sim.run(until=6.0)
    cfg = proto.config
    for pdu in observed:
        expected = cfg.session_header_size + len(pdu.entries) * cfg.session_entry_size
        assert pdu.size_bytes == expected
