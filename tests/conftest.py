"""Shared fixtures: small canonical networks used across test modules."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.sim.scheduler import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def line_net(sim: Simulator) -> Network:
    """0 — 1 — 2 — 3 chain, 10 Mbit, 10 ms per hop, lossless."""
    net = Network(sim)
    for _ in range(4):
        net.add_node()
    for a, b in [(0, 1), (1, 2), (2, 3)]:
        net.add_link(a, b, 10e6, 0.010)
    return net


@pytest.fixture
def star_net(sim: Simulator) -> Network:
    """Hub 0 with leaves 1..4, 10 Mbit, 5 ms, lossless."""
    net = Network(sim)
    for _ in range(5):
        net.add_node()
    for leaf in range(1, 5):
        net.add_link(0, leaf, 10e6, 0.005)
    return net


@pytest.fixture
def tree_net(sim: Simulator) -> Network:
    """Binary tree of depth 2: 0 -> (1,2), 1 -> (3,4), 2 -> (5,6)."""
    net = Network(sim)
    for _ in range(7):
        net.add_node()
    for a, b in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]:
        net.add_link(a, b, 10e6, 0.020)
    return net
