"""Unit-level tests for SRM agent mechanics on tiny networks."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.sim.scheduler import Simulator
from repro.srm.agent import SrmAgent
from repro.srm.config import SrmConfig


def make_pair(seed=1, loss=0.0, n_packets=16):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_node()
    net.add_node()
    net.add_link(0, 1, 10e6, 0.010, loss_rate=loss)
    members = {0, 1}
    data = net.create_group("d", scope=members).group_id
    sess = net.create_group("s", scope=members).group_id
    cfg = SrmConfig(n_packets=n_packets)
    src = SrmAgent(0, sim, net, data, sess, cfg, 0, is_source=True)
    rcv = SrmAgent(1, sim, net, data, sess, cfg, 0)
    for agent in (src, rcv):
        agent.join()
    return sim, net, src, rcv


def test_gap_detection_creates_losses():
    sim, net, src, rcv = make_pair()
    rcv._handle_data(0)
    rcv._handle_data(3)
    assert set(rcv.losses) == {1, 2}
    assert rcv.highest_seen == 3


def test_note_exists_tail():
    sim, net, src, rcv = make_pair()
    rcv._handle_data(0)
    rcv._note_exists(4)
    assert set(rcv.losses) == {1, 2, 3, 4}


def test_repair_resolves_loss_and_cancels_timer():
    sim, net, src, rcv = make_pair()
    rcv._handle_data(0)
    rcv._handle_data(2)
    loss = rcv.losses[1]
    assert loss.timer.running
    rcv._handle_repair(1)
    assert 1 not in rcv.losses
    assert not loss.timer.running
    assert 1 in rcv.received


def test_duplicate_data_ignored():
    sim, net, src, rcv = make_pair()
    rcv._handle_data(0)
    rcv._handle_data(0)
    assert rcv.data_received == 2  # counted as traffic
    assert len(rcv.received) == 1


def test_request_suppression_backs_off():
    from repro.srm.pdus import SrmRequestPdu

    sim, net, src, rcv = make_pair()
    rcv._handle_data(0)
    rcv._handle_data(2)
    loss = rcv.losses[1]
    backoff_before = loss.backoff
    expiry_before = loss.timer.expires_at
    rcv._handle_request(SrmRequestPdu(0, rcv.data_group, 32, 1))
    assert loss.backoff == backoff_before + 1
    assert loss.requests_seen == 1
    assert loss.timer.expires_at is not None


def test_request_for_held_packet_arms_repair_timer():
    from repro.srm.pdus import SrmRequestPdu

    sim, net, src, rcv = make_pair()
    rcv._handle_data(0)
    rcv.rtt.observe(0, 0.02)
    rcv._handle_request(SrmRequestPdu(0, rcv.data_group, 32, 0))
    timer = rcv._repair_timers[0]
    assert timer.running
    # Within the reply window [d, 2d] of the one-way distance 0.01.
    delay = timer.expires_at - sim.now
    assert 0.01 <= delay <= 0.02 + 1e-9


def test_hearing_repair_suppresses_own():
    from repro.srm.pdus import SrmRequestPdu

    sim, net, src, rcv = make_pair()
    rcv._handle_data(0)
    rcv._handle_request(SrmRequestPdu(0, rcv.data_group, 32, 0))
    assert rcv._repair_timers[0].running
    rcv._handle_repair(0)
    assert not rcv._repair_timers[0].running
    # Counted as a duplicate-repair event for the adaptive timers.
    assert rcv.reply_timer_state.ave_dup > 0


def test_request_for_unknown_seq_becomes_loss():
    from repro.srm.pdus import SrmRequestPdu

    sim, net, src, rcv = make_pair()
    rcv._handle_request(SrmRequestPdu(0, rcv.data_group, 32, 5))
    assert set(rcv.losses) == {0, 1, 2, 3, 4, 5}


def test_source_never_has_losses():
    sim, net, src, rcv = make_pair()
    src.start_stream(0.0)
    sim.run(until=5.0)
    assert src.missing() == 0
    assert not src.losses


def test_end_to_end_pair_with_loss():
    sim, net, src, rcv = make_pair(seed=3, loss=0.25, n_packets=32)
    src.start_session()
    rcv.start_session()
    sim.at(2.0, src.start_stream, 2.0)
    sim.run(until=40.0)
    assert rcv.all_received()
    assert rcv.nacks_sent > 0
    assert src.repairs_sent > 0
