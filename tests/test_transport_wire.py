"""Wire-codec round-trips for every PDU class, plus malformed-frame rejection.

The invariant under test: ``decode(encode(p))`` reconstructs the exact PDU
class with every protocol field equal — including ``describe()`` output, so
a trace captured on the far side of a real UDP hop diffs clean against the
sender's.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pdus import (
    DataPdu,
    FecPdu,
    NackPdu,
    RttChainEntry,
    SessionEntry,
    SessionPdu,
    ZcrChallengePdu,
    ZcrElectPdu,
    ZcrReconcilePdu,
    ZcrResponsePdu,
    ZcrTakeoverPdu,
)
from repro.errors import ReproError, WireError
from repro.net.packet import Packet
from repro.srm.pdus import (
    SrmDataPdu,
    SrmRepairPdu,
    SrmRequestPdu,
    SrmSessionEntry,
    SrmSessionPdu,
)
from repro.transport.wire import (
    HEADER_SIZE,
    MAGIC,
    WIRE_VERSION,
    decode,
    encode,
    peek_header,
)

# ------------------------------------------------------------------ samples
#
# At least one instance per PDU class, exercising sentinels (-1 ids, absent
# payloads), empty and non-empty entry tuples, and empty-but-present bytes.

SAMPLES = [
    DataPdu(0, 3, 1024, seq=7, group_id=0, index=7),
    DataPdu(2, 3, 1024, seq=8, group_id=1, index=0, payload=b""),
    DataPdu(-1, 3, 1024, seq=9, group_id=1, index=1, payload=b"\x00\xffhello"),
    FecPdu(4, 5, 1024, group_id=2, index=17, new_high_id=19, zone_id=9),
    FecPdu(4, 5, 1024, group_id=2, index=18, new_high_id=19, zone_id=-1, payload=b"fec"),
    NackPdu(6, 7, 64, group_id=3, llc=2, highest_seen=15, n_needed=2, zone_id=9),
    NackPdu(
        6,
        7,
        64,
        group_id=3,
        llc=0,
        highest_seen=-1,
        n_needed=1,
        zone_id=9,
        rtt_chain=(
            RttChainEntry(9, 4, 0.052),
            RttChainEntry(12, 2, -1.0),
        ),
    ),
    SessionPdu(
        8,
        9,
        220,
        zone_id=9,
        timestamp=12.125,
        zcr_id=-1,
        zcr_parent_rtt=-1.0,
        entries=(),
    ),
    SessionPdu(
        8,
        9,
        220,
        zone_id=9,
        timestamp=12.125,
        zcr_id=4,
        zcr_parent_rtt=0.034,
        entries=(
            SessionEntry(2, 11.5, 0.625, 0.041),
            SessionEntry(3, 11.75, 0.375, -1.0),
        ),
        zcr_epoch=2,
        highest_group=17,
    ),
    ZcrChallengePdu(10, 11, 48, zone_id=9, sent_at=3.5),
    ZcrResponsePdu(11, 12, 48, zone_id=9, challenger_id=10, processing_delay=0.002),
    ZcrTakeoverPdu(12, 13, 48, zone_id=9, dist_to_parent=0.025, epoch=3),
    ZcrElectPdu(13, 14, 48, zone_id=9, epoch=4, attempt=1, dist_to_parent=-1.0),
    ZcrReconcilePdu(
        14, 15, 64, zone_id=9, epoch=5, outstanding=((0, 2), (3, 1), (7, 4))
    ),
    ZcrReconcilePdu(14, 15, 64, zone_id=9, epoch=5, outstanding=()),
    SrmDataPdu(0, 1, 1000, seq=42),
    SrmRequestPdu(3, 1, 64, seq=42),
    SrmRepairPdu(5, 1, 1000, seq=42),
    SrmSessionPdu(7, 2, 128, timestamp=4.25, highest_seq=-1, entries=()),
    SrmSessionPdu(
        7,
        2,
        128,
        timestamp=4.25,
        highest_seq=99,
        entries=(SrmSessionEntry(1, 3.5, 0.75), SrmSessionEntry(2, 3.625, 0.625)),
    ),
]

ALL_PDU_CLASSES = {
    DataPdu,
    FecPdu,
    NackPdu,
    SessionPdu,
    ZcrChallengePdu,
    ZcrResponsePdu,
    ZcrTakeoverPdu,
    ZcrElectPdu,
    ZcrReconcilePdu,
    SrmDataPdu,
    SrmRequestPdu,
    SrmRepairPdu,
    SrmSessionPdu,
}


def _protocol_fields(pdu):
    """Every slot attribute across the MRO except the per-process uid."""
    names = []
    for klass in type(pdu).__mro__:
        names.extend(getattr(klass, "__slots__", ()))
    return {n: getattr(pdu, n) for n in names if n != "uid"}


def assert_roundtrip(pdu):
    frame = encode(pdu)
    clone = decode(frame)
    assert type(clone) is type(pdu)
    assert _protocol_fields(clone) == _protocol_fields(pdu)
    assert clone.describe() == pdu.describe()
    header = peek_header(frame)
    assert header.kind == pdu.kind
    assert header.src == pdu.src
    assert header.group == pdu.group
    assert header.size_bytes == pdu.size_bytes
    assert header.loss_exempt == pdu.loss_exempt
    return frame


def test_every_pdu_class_has_a_sample():
    assert {type(p) for p in SAMPLES} == ALL_PDU_CLASSES


@pytest.mark.parametrize("pdu", SAMPLES, ids=lambda p: p.describe())
def test_roundtrip(pdu):
    assert_roundtrip(pdu)


def test_encoding_is_deterministic():
    a = NackPdu(6, 7, 64, 3, 2, 15, 2, 9, rtt_chain=(RttChainEntry(9, 4, 0.052),))
    b = NackPdu(6, 7, 64, 3, 2, 15, 2, 9, rtt_chain=(RttChainEntry(9, 4, 0.052),))
    assert encode(a) == encode(b)  # uid and identity never leak into frames


# ------------------------------------------------------- malformed frames


@pytest.mark.parametrize("pdu", SAMPLES, ids=lambda p: p.describe())
def test_every_truncation_is_rejected(pdu):
    frame = encode(pdu)
    for cut in range(len(frame)):
        with pytest.raises(WireError):
            decode(frame[:cut])


@pytest.mark.parametrize("pdu", SAMPLES, ids=lambda p: p.describe())
def test_trailing_bytes_rejected(pdu):
    with pytest.raises(WireError):
        decode(encode(pdu) + b"\x00")


def test_bad_magic_rejected():
    frame = bytearray(encode(SAMPLES[0]))
    frame[0:2] = b"XX"
    with pytest.raises(WireError, match="magic"):
        decode(bytes(frame))


def test_unknown_version_rejected():
    frame = bytearray(encode(SAMPLES[0]))
    frame[2] = WIRE_VERSION + 1
    with pytest.raises(WireError, match="version"):
        decode(bytes(frame))


def test_unknown_type_code_rejected():
    frame = bytearray(encode(SAMPLES[0]))
    frame[3] = 0x7F
    with pytest.raises(WireError, match="type code"):
        decode(bytes(frame))


def test_empty_and_short_frames_rejected():
    with pytest.raises(WireError):
        decode(b"")
    with pytest.raises(WireError):
        peek_header(MAGIC)
    with pytest.raises(WireError):
        decode(encode(SAMPLES[0])[: HEADER_SIZE - 1])


def test_corrupt_entry_count_rejected():
    # Inflate the NACK rtt_chain count without providing the entries.
    pdu = NackPdu(6, 7, 64, 3, 2, 15, 2, 9, rtt_chain=(RttChainEntry(9, 4, 0.052),))
    frame = bytearray(encode(pdu))
    count_off = HEADER_SIZE + struct.calcsize("!iiiii")
    frame[count_off : count_off + 2] = struct.pack("!H", 500)
    with pytest.raises(WireError, match="truncated"):
        decode(bytes(frame))


def test_frame_decoding_to_invalid_packet_rejected():
    # size_bytes == 0 violates the Packet constructor; the codec surfaces
    # that as a WireError rather than a bare ValueError.
    frame = bytearray(encode(SAMPLES[0]))
    frame[12:16] = struct.pack("!I", 0)
    with pytest.raises(WireError, match="invalid"):
        decode(bytes(frame))


def test_unencodable_packets_rejected():
    with pytest.raises(WireError, match="no wire codec"):
        encode(Packet("DATA", 0, 1, 100))

    class SneakyData(DataPdu):
        __slots__ = ("extra",)

    sneaky = SneakyData(0, 1, 100, 1, 0, 1)
    sneaky.extra = "dropped-on-the-floor"
    with pytest.raises(WireError, match="no wire codec"):
        encode(sneaky)  # exact-type dispatch: subclasses would lose fields


def test_loss_exempt_survives_peek():
    exempt = {p.describe(): peek_header(encode(p)).loss_exempt for p in SAMPLES}
    # Data and repair traffic is lossy; NACKs, session and ZCR control are
    # exempt (§6.2) — the relay enforces this from the header alone.
    for pdu in SAMPLES:
        assert peek_header(encode(pdu)).loss_exempt == pdu.loss_exempt, exempt


# ------------------------------------------------------------- hypothesis

i32 = st.integers(-(2**31), 2**31 - 1)
sizes = st.integers(1, 2**31)
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
payloads = st.none() | st.binary(max_size=128)

rtt_chains = st.tuples() | st.lists(
    st.builds(RttChainEntry, i32, i32, finite), max_size=8
).map(tuple)
session_entries = st.lists(
    st.builds(SessionEntry, i32, finite, finite, finite), max_size=8
).map(tuple)
srm_entries = st.lists(
    st.builds(SrmSessionEntry, i32, finite, finite), max_size=8
).map(tuple)
outstanding = st.lists(st.tuples(i32, i32), max_size=8).map(tuple)

pdu_strategy = st.one_of(
    st.builds(DataPdu, i32, i32, sizes, i32, i32, i32, payloads),
    st.builds(FecPdu, i32, i32, sizes, i32, i32, i32, i32, payloads),
    st.builds(NackPdu, i32, i32, sizes, i32, i32, i32, i32, i32, rtt_chains),
    st.builds(SessionPdu, i32, i32, sizes, i32, finite, i32, finite, session_entries, i32, i32),
    st.builds(ZcrChallengePdu, i32, i32, sizes, i32, finite),
    st.builds(ZcrResponsePdu, i32, i32, sizes, i32, i32, finite),
    st.builds(ZcrTakeoverPdu, i32, i32, sizes, i32, finite, i32),
    st.builds(ZcrElectPdu, i32, i32, sizes, i32, i32, i32, finite),
    st.builds(ZcrReconcilePdu, i32, i32, sizes, i32, i32, outstanding),
    st.builds(SrmDataPdu, i32, i32, sizes, i32),
    st.builds(SrmRequestPdu, i32, i32, sizes, i32),
    st.builds(SrmRepairPdu, i32, i32, sizes, i32),
    st.builds(SrmSessionPdu, i32, i32, sizes, finite, i32, srm_entries),
)


@settings(max_examples=200, deadline=None)
@given(pdu_strategy)
def test_roundtrip_property(pdu):
    assert_roundtrip(pdu)


@settings(max_examples=100, deadline=None)
@given(pdu_strategy, st.data())
def test_truncation_property(pdu, data):
    frame = encode(pdu)
    cut = data.draw(st.integers(0, len(frame) - 1))
    with pytest.raises(WireError):
        decode(frame[:cut])


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=64))
def test_garbage_never_crashes(blob):
    # Arbitrary noise must yield WireError, never a struct.error / IndexError.
    try:
        decode(blob)
    except WireError:
        pass


def test_wire_error_is_repro_error():
    assert issubclass(WireError, ReproError)
