"""Unit tests for RunObserver, summarize_detail, and ProgressReporter."""

from __future__ import annotations

import io

import pytest

from repro.net.packet import Packet
from repro.obs.progress import ProgressReporter
from repro.obs.recorder import (
    RunObserver,
    default_trace_categories,
    fault_categories,
    summarize_detail,
)
from repro.sim.scheduler import Simulator


# ---------------------------------------------------------------- observer


def test_protocol_counters_and_zone_queries():
    sim = Simulator(seed=1)
    obs = RunObserver(sim).attach()
    sim.tracer.emit(1.0, "sharqfec.nack", 5, {"zone": 2, "group": 0})
    sim.tracer.emit(1.1, "sharqfec.repair", 3, {"zone": 2, "group": 0, "index": 4})
    sim.tracer.emit(1.2, "sharqfec.repair", 3, {"zone": 7, "group": 0, "index": 5})
    sim.tracer.emit(1.3, "sharqfec.inject", 3, {"zone": 2, "group": 1, "n": 4})
    sim.tracer.emit(2.0, "srm.nack", 9, {"seq": 3})
    obs.detach()
    assert obs.repairs_by_zone() == {2: 1, 7: 1}
    assert obs.nacks_by_zone() == {2: 1}
    assert obs.registry.counter("nacks_sent", protocol="srm", zone=-1).value == 1
    assert obs.registry.counter("injections", protocol="sharqfec", zone=2).value == 1
    assert obs.registry.counter(
        "injected_packets", protocol="sharqfec", zone=2
    ).value == 4
    hist = obs.registry.histogram(
        "repairs_sent_per_interval", 0.1, protocol="sharqfec", zone=2
    )
    assert hist.bins == {11: 1}


def test_fault_and_reconvergence_counters():
    sim = Simulator(seed=1)
    obs = RunObserver(sim).attach()
    kinds = fault_categories()
    assert kinds and all(cat.startswith("fault.") for cat in kinds)
    sim.tracer.emit(1.0, kinds[0], -1, {"detail": "x"})
    sim.tracer.emit(1.5, kinds[0], -1, None)
    sim.tracer.emit(2.0, "net.reconverge", -1, None)
    obs.detach()
    kind = kinds[0].partition(".")[2]
    assert obs.fault_counts() == {kind: 2}
    assert obs.registry.counter("reconvergences").value == 1


def test_zone_traffic_histograms():
    sim = Simulator(seed=1)
    pkt = Packet(src=0, group=1, size_bytes=1000, kind="DATA")
    obs = RunObserver(sim, zone_of={5: 30, 6: 31}).attach()
    sim.tracer.emit(0.3, "pkt.recv", 5, pkt)
    sim.tracer.emit(0.3, "pkt.recv", 6, pkt)
    sim.tracer.emit(0.4, "pkt.drop", 5, pkt)
    sim.tracer.emit(0.4, "pkt.recv", 99, pkt)  # unmapped node: ignored
    obs.detach()
    assert obs.registry.histogram("zone_traffic", 0.1, zone=30, kind="DATA").bins == {3: 1}
    assert obs.registry.histogram("zone_traffic", 0.1, zone=31, kind="DATA").bins == {3: 1}
    assert obs.registry.histogram("zone_drops", 0.1, zone=30, kind="DATA").bins == {4: 1}


def test_trace_capture_and_sink():
    sim = Simulator(seed=1)
    sunk = []
    obs = RunObserver(sim, capture_trace=True, trace_sink=sunk.append).attach()
    sim.tracer.emit(1.0, "sharqfec.nack", 5, {"zone": 2})
    sim.tracer.emit(1.0, "pkt.send", 0, Packet(src=0, group=1, size_bytes=8, kind="DATA"))
    obs.detach()
    assert [r.category for r in obs.trace_records] == ["sharqfec.nack", "pkt.send"]
    assert sunk == obs.trace_records
    # Each record reaches the capture path exactly once even though the
    # nack category also has a metrics listener.
    assert obs.registry.counter("nacks_sent", protocol="sharqfec", zone=2).value == 1


def test_detach_restores_zero_cost():
    sim = Simulator(seed=1)
    assert not sim.tracer.wants("sharqfec.repair")
    obs = RunObserver(sim).attach()
    assert sim.tracer.wants("sharqfec.repair")
    obs.detach()
    assert not sim.tracer.wants("sharqfec.repair")
    obs.detach()  # idempotent


def test_observer_context_manager():
    sim = Simulator(seed=1)
    with RunObserver(sim) as obs:
        sim.tracer.emit(1.0, "srm.repair", 2, {"seq": 1})
    assert obs.registry.counter("repairs_sent", protocol="srm", zone=-1).value == 1
    assert not sim.tracer.wants("srm.repair")


def test_default_trace_categories_cover_faults():
    cats = default_trace_categories()
    assert "pkt.recv" in cats
    assert "sharqfec.repair" in cats
    assert "net.reconverge" in cats
    assert set(fault_categories()) <= set(cats)
    assert len(cats) == len(set(cats))


# ---------------------------------------------------------------- details


def test_summarize_detail_shapes():
    assert summarize_detail(None) is None
    assert summarize_detail(3) == 3
    assert summarize_detail({"zone": 1}) == {"zone": 1}
    pkt = Packet(src=4, group=16, size_bytes=1000, kind="FEC")
    summary = summarize_detail(pkt)
    assert summary["kind"] == "FEC"
    assert summary["src"] == 4
    assert summary["group"] == 16
    assert summary["size_bytes"] == 1000
    # Objects with none of the known attributes stringify.
    assert isinstance(summarize_detail(object()), str)


# --------------------------------------------------------------- progress


def test_progress_reporter_lines():
    sim = Simulator(seed=1)
    for i in range(100):
        sim.at(i * 0.2, lambda: None)
    stream = io.StringIO()
    reporter = ProgressReporter(sim, interval=5.0, stream=stream, label="demo").start()
    sim.run(until=20.0)
    reporter.stop()
    # Ticks at t=5, 10, 15, 20.
    assert len(reporter.lines) == 4
    assert all("demo" in line and "events=" in line for line in reporter.lines)
    assert stream.getvalue().count("\n") == 4


def test_progress_reporter_rejects_bad_interval():
    with pytest.raises(ValueError):
        ProgressReporter(Simulator(seed=1), interval=0.0)
