"""Equivalence tests: the NumPy codec must match the reference bit-exactly."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.fec.codec import ErasureCodec
from repro.fec.fast import NumpyErasureCodec


def make_data(k, width=64, seed=3):
    return [bytes((seed * 31 + i * 7 + j) % 256 for j in range(width)) for i in range(k)]


def test_encode_matches_reference():
    k = 16
    data = make_data(k)
    ref = ErasureCodec(k).encode(data, 6)
    fast = NumpyErasureCodec(k).encode(data, 6)
    assert fast == ref


def test_encode_one_matches_reference():
    k = 8
    data = make_data(k)
    ref = ErasureCodec(k)
    fast = NumpyErasureCodec(k)
    for r in range(5):
        assert fast.encode_one(data, r) == ref.encode_one(data, r)


def test_decode_matches_reference():
    k = 8
    data = make_data(k)
    fast = NumpyErasureCodec(k)
    repairs = fast.encode(data, k)
    packets = {0: data[0], 3: data[3]}
    packets.update({k + r: repairs[r] for r in range(k - 2)})
    assert fast.decode(packets) == data
    assert ErasureCodec(k).decode(packets) == data


def test_zero_repairs():
    fast = NumpyErasureCodec(4)
    assert fast.encode(make_data(4), 0) == []


def test_all_original_fast_path():
    k = 4
    data = make_data(k)
    assert NumpyErasureCodec(k).decode({i: data[i] for i in range(k)}) == data


def test_validation_shared_with_reference():
    fast = NumpyErasureCodec(3)
    with pytest.raises(CodecError):
        fast.encode([b"aa", b"bb"], 1)
    with pytest.raises(CodecError):
        fast.encode([b"aa", b"bb", b"ccc"], 1)
    with pytest.raises(CodecError):
        fast.decode({0: b"aa", 1: b"bb"})
    with pytest.raises(CodecError):
        fast.encode(make_data(3), -1)


def test_can_decode_delegates():
    fast = NumpyErasureCodec(4)
    assert fast.can_decode([0, 1, 5, 9])
    assert not fast.can_decode([0, 1, 2])


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=10),
    st.integers(min_value=1, max_value=128),
    st.randoms(use_true_random=False),
)
def test_random_roundtrips_equal_reference(k, n_repairs, width, rnd):
    data = [bytes(rnd.randrange(256) for _ in range(width)) for _ in range(k)]
    ref = ErasureCodec(k)
    fast = NumpyErasureCodec(k)
    assert fast.encode(data, n_repairs) == ref.encode(data, n_repairs)
    pool = {i: data[i] for i in range(k)}
    repairs = fast.encode(data, n_repairs)
    pool.update({k + r: repairs[r] for r in range(n_repairs)})
    indices = sorted(pool)
    rnd.shuffle(indices)
    survivors = {i: pool[i] for i in indices[: k]}
    if len(survivors) >= k:
        assert fast.decode(survivors) == data
